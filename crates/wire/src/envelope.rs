//! Versioned, checksummed container for one durable payload.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"NOSQCKPT"
//!      8     4  format version (currently 1)
//!     12     8  caller fingerprint (binds the payload to its context)
//!     20     8  payload length
//!     28   len  payload
//! 28+len     8  FNV-1a over bytes[8 .. 28+len]
//! ```
//!
//! [`open`] rejects truncation with an O(1) length check *before*
//! hashing anything (an exhaustive every-prefix truncation sweep over
//! an n-byte envelope is O(n), not O(n²)), and rejects any single-byte
//! corruption: flips in the hashed region change the FNV-1a digest
//! (the per-byte xor-then-odd-multiply step is a bijection on `u64`),
//! flips in the stored checksum mismatch the recomputed one, flips in
//! the magic fail the magic check, and flips in the length field fail
//! the exact-length check.

use crate::fnv1a;

/// First 8 bytes of every envelope.
pub const MAGIC: [u8; 8] = *b"NOSQCKPT";

/// Current envelope format version.
pub const VERSION: u32 = 1;

/// Fixed bytes around the payload: 28-byte header + 8-byte checksum.
pub const OVERHEAD: usize = 36;

const HEADER: usize = 28;

/// Why an envelope was rejected. Every variant means the payload was
/// never interpreted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvelopeError {
    /// Shorter than the fixed overhead, or not exactly header +
    /// declared payload + checksum long (covers every truncation).
    Length {
        /// Length the envelope declared (`None` if too short to say).
        expected: Option<usize>,
        /// Length actually present.
        actual: usize,
    },
    /// The first 8 bytes are not [`MAGIC`].
    Magic,
    /// A version this decoder does not speak.
    Version(u32),
    /// The FNV-1a digest over the hashed region does not match.
    Checksum,
    /// The caller's fingerprint does not match the sealed one.
    Fingerprint {
        /// Fingerprint stored in the envelope.
        sealed: u64,
        /// Fingerprint the caller expected.
        expected: u64,
    },
}

impl std::fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnvelopeError::Length { expected, actual } => match expected {
                Some(e) => write!(f, "envelope length {actual} != expected {e}"),
                None => write!(f, "envelope truncated at {actual} bytes"),
            },
            EnvelopeError::Magic => write!(f, "bad envelope magic"),
            EnvelopeError::Version(v) => write!(f, "unsupported envelope version {v}"),
            EnvelopeError::Checksum => write!(f, "envelope checksum mismatch"),
            EnvelopeError::Fingerprint { sealed, expected } => {
                write!(
                    f,
                    "fingerprint mismatch: sealed {sealed:#018x}, expected {expected:#018x}"
                )
            }
        }
    }
}

impl std::error::Error for EnvelopeError {}

/// Wraps `payload` in a checksummed envelope bound to `fingerprint`.
pub fn seal(fingerprint: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(OVERHEAD + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let digest = fnv1a(&out[8..]);
    out.extend_from_slice(&digest.to_le_bytes());
    out
}

/// Validates an envelope and returns a borrow of its payload.
///
/// Checks run cheapest-first: total length, magic, version, declared
/// length against actual length, checksum, fingerprint. Truncated or
/// bit-flipped input is rejected before any payload byte is read.
pub fn open(bytes: &[u8], fingerprint: u64) -> Result<&[u8], EnvelopeError> {
    if bytes.len() < OVERHEAD {
        return Err(EnvelopeError::Length {
            expected: None,
            actual: bytes.len(),
        });
    }
    if bytes[..8] != MAGIC {
        return Err(EnvelopeError::Magic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(EnvelopeError::Version(version));
    }
    let sealed = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let len = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
    let expected = (len as usize)
        .checked_add(OVERHEAD)
        .filter(|_| len <= usize::MAX as u64);
    if expected != Some(bytes.len()) {
        return Err(EnvelopeError::Length {
            expected,
            actual: bytes.len(),
        });
    }
    let body_end = HEADER + len as usize;
    let stored = u64::from_le_bytes(bytes[body_end..].try_into().unwrap());
    if fnv1a(&bytes[8..body_end]) != stored {
        return Err(EnvelopeError::Checksum);
    }
    if sealed != fingerprint {
        return Err(EnvelopeError::Fingerprint {
            sealed,
            expected: fingerprint,
        });
    }
    Ok(&bytes[HEADER..body_end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let sealed = seal(42, b"hello checkpoint");
        assert_eq!(open(&sealed, 42).unwrap(), b"hello checkpoint");
    }

    #[test]
    fn empty_payload_roundtrips() {
        let sealed = seal(7, b"");
        assert_eq!(sealed.len(), OVERHEAD);
        assert_eq!(open(&sealed, 7).unwrap(), b"");
    }

    #[test]
    fn every_truncation_is_rejected() {
        let sealed = seal(1, &[0xabu8; 33]);
        for cut in 0..sealed.len() {
            assert!(
                open(&sealed[..cut], 1).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        let sealed = seal(1, &[0x5au8; 29]);
        for i in 0..sealed.len() {
            for flip in [0x01u8, 0x80, 0xff] {
                let mut m = sealed.clone();
                m[i] ^= flip;
                assert!(
                    open(&m, 1).is_err(),
                    "corruption at byte {i} (^{flip:#x}) accepted"
                );
            }
        }
    }

    #[test]
    fn extension_is_rejected() {
        let mut sealed = seal(1, b"xyz");
        sealed.push(0);
        assert!(matches!(
            open(&sealed, 1),
            Err(EnvelopeError::Length { .. })
        ));
    }

    #[test]
    fn wrong_fingerprint_is_rejected() {
        let sealed = seal(10, b"payload");
        assert_eq!(
            open(&sealed, 11),
            Err(EnvelopeError::Fingerprint {
                sealed: 10,
                expected: 11
            })
        );
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut sealed = seal(1, b"payload");
        sealed[8] = 2;
        // Version is inside the hashed region, so reseal the checksum
        // to isolate the version check.
        let end = sealed.len() - 8;
        let digest = crate::fnv1a(&sealed[8..end]);
        sealed[end..].copy_from_slice(&digest.to_le_bytes());
        assert_eq!(open(&sealed, 1), Err(EnvelopeError::Version(2)));
    }
}
