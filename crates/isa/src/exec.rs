//! Architectural (functional) execution.
//!
//! The NoSQ simulator is functional-first: this executor runs a program to
//! produce the correct-path dynamic instruction stream, and the timing
//! models replay that stream. Each [`ArchState::step`] yields an
//! [`ExecRecord`] carrying the architecturally-correct values the timing
//! models need for value-based verification (paper §2.2, §3.4).

use crate::inst::{AluKind, Extension, Inst, MemWidth, Reg, Src};
use crate::mem::Memory;
use crate::program::Program;
use crate::INST_BYTES;

/// Execution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The PC does not map to an instruction.
    UnmappedPc {
        /// The faulting PC.
        pc: u64,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnmappedPc { pc } => write!(f, "unmapped pc {pc:#x}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// The outcome of executing one dynamic instruction.
#[derive(Copy, Clone, Debug)]
pub struct ExecRecord {
    /// PC of the executed instruction.
    pub pc: u64,
    /// The instruction itself.
    pub inst: Inst,
    /// Effective address (memory operations only, else 0).
    pub addr: u64,
    /// Architecturally-correct load result, post-extension (loads only).
    pub load_value: u64,
    /// Raw data-register value (stores only) — the value SMB's
    /// short-circuited register would carry.
    pub store_data: u64,
    /// The low `width` bytes actually written to memory (stores only;
    /// differs from `store_data` for partial-word and `sts` stores).
    pub store_mem_bits: u64,
    /// Branch outcome (control instructions only; unconditional transfers
    /// report `true`).
    pub taken: bool,
    /// PC of the next dynamic instruction.
    pub next_pc: u64,
}

/// Full architectural machine state.
#[derive(Clone, Debug)]
pub struct ArchState {
    regs: [u64; Reg::COUNT],
    pc: u64,
    mem: Memory,
    halted: bool,
    retired: u64,
}

/// Applies the in-memory truncation a store performs on its data register.
///
/// For `sts` (`float32`), the register's binary64 value is converted to
/// binary32 bits (paper §3.5).
pub fn store_memory_bits(data: u64, width: MemWidth, float32: bool) -> u64 {
    if float32 {
        debug_assert_eq!(width, MemWidth::B4, "sts must be 4 bytes wide");
        return (f64::from_bits(data) as f32).to_bits() as u64;
    }
    match width {
        MemWidth::B8 => data,
        w => data & ((1u64 << (8 * w.bytes())) - 1),
    }
}

/// Applies the widening a load performs on raw memory bits.
///
/// For `lds` ([`Extension::Float32`]), the 4 memory bytes are binary32 and
/// the register receives the binary64 representation (paper §3.5).
pub fn load_extend(raw: u64, width: MemWidth, ext: Extension) -> u64 {
    match ext {
        Extension::Float32 => {
            debug_assert_eq!(width, MemWidth::B4, "lds must be 4 bytes wide");
            f64::from(f32::from_bits(raw as u32)).to_bits()
        }
        Extension::Zero => raw,
        Extension::Sign => match width {
            MemWidth::B1 => raw as u8 as i8 as i64 as u64,
            MemWidth::B2 => raw as u16 as i16 as i64 as u64,
            MemWidth::B4 => raw as u32 as i32 as i64 as u64,
            MemWidth::B8 => raw,
        },
    }
}

/// Evaluates an ALU operation (total: divide-by-zero yields 0).
pub fn alu_eval(kind: AluKind, a: u64, b: u64) -> u64 {
    match kind {
        AluKind::Add => a.wrapping_add(b),
        AluKind::Sub => a.wrapping_sub(b),
        AluKind::And => a & b,
        AluKind::Or => a | b,
        AluKind::Xor => a ^ b,
        AluKind::Shl => a.wrapping_shl(b as u32),
        AluKind::Shr => a.wrapping_shr(b as u32),
        AluKind::Sra => (a as i64).wrapping_shr(b as u32) as u64,
        AluKind::Slt => ((a as i64) < (b as i64)) as u64,
        AluKind::Sltu => (a < b) as u64,
        AluKind::Seq => (a == b) as u64,
        AluKind::Mul => a.wrapping_mul(b),
        AluKind::Div => {
            if b == 0 {
                0
            } else {
                (a as i64).wrapping_div(b as i64) as u64
            }
        }
        AluKind::FAdd => (f64::from_bits(a) + f64::from_bits(b)).to_bits(),
        AluKind::FSub => (f64::from_bits(a) - f64::from_bits(b)).to_bits(),
        AluKind::FMul => (f64::from_bits(a) * f64::from_bits(b)).to_bits(),
        AluKind::FDiv => (f64::from_bits(a) / f64::from_bits(b)).to_bits(),
        AluKind::IToF => ((a as i64) as f64).to_bits(),
        AluKind::FToI => (f64::from_bits(a) as i64) as u64,
    }
}

impl ArchState {
    /// Creates the initial state for `program`: all registers zero, PC at
    /// the entry point, memory holding the program's data segments.
    pub fn new(program: &Program) -> ArchState {
        ArchState {
            regs: [0; Reg::COUNT],
            pc: program.entry(),
            mem: program.initial_memory(),
            halted: false,
            retired: 0,
        }
    }

    /// Current PC.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Whether a [`Inst::Halt`] has been executed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Number of retired dynamic instructions.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Reads an architectural register (the zero register reads 0).
    pub fn reg(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Writes an architectural register (zero-register writes are dropped).
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// Immutable view of memory.
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// A stable digest of the architectural state (registers + retired
    /// count), used by tests to compare executions.
    pub fn reg_digest(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64; // FNV-1a
        for r in &self.regs {
            h ^= *r;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^ self.retired
    }

    fn src_value(&self, src: Src) -> u64 {
        match src {
            Src::Reg(r) => self.reg(r),
            Src::Imm(i) => i as u64,
        }
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::UnmappedPc`] if the PC leaves the program.
    /// Stepping a halted machine re-returns the halt record without
    /// advancing.
    pub fn step(&mut self, program: &Program) -> Result<ExecRecord, ExecError> {
        let pc = self.pc;
        let inst = *program.inst_at(pc).ok_or(ExecError::UnmappedPc { pc })?;
        let fall_through = pc + INST_BYTES;

        let mut rec = ExecRecord {
            pc,
            inst,
            addr: 0,
            load_value: 0,
            store_data: 0,
            store_mem_bits: 0,
            taken: false,
            next_pc: fall_through,
        };

        match inst {
            Inst::Alu { kind, rd, ra, src } => {
                let value = alu_eval(kind, self.reg(ra), self.src_value(src));
                self.set_reg(rd, value);
            }
            Inst::Load {
                rd,
                base,
                ofs,
                width,
                ext,
            } => {
                let addr = self.reg(base).wrapping_add(ofs as i64 as u64);
                let raw = self.mem.read(addr, width.bytes());
                let value = load_extend(raw, width, ext);
                self.set_reg(rd, value);
                rec.addr = addr;
                rec.load_value = value;
            }
            Inst::Store {
                data,
                base,
                ofs,
                width,
                float32,
            } => {
                let addr = self.reg(base).wrapping_add(ofs as i64 as u64);
                let reg_value = self.reg(data);
                let bits = store_memory_bits(reg_value, width, float32);
                self.mem.write(addr, width.bytes(), bits);
                rec.addr = addr;
                rec.store_data = reg_value;
                rec.store_mem_bits = bits;
            }
            Inst::Branch {
                cond,
                ra,
                rb,
                target,
            } => {
                rec.taken = cond.eval(self.reg(ra), self.reg(rb));
                if rec.taken {
                    rec.next_pc = target;
                }
            }
            Inst::Jump { target } => {
                rec.taken = true;
                rec.next_pc = target;
            }
            Inst::Call { target, link } => {
                self.set_reg(link, fall_through);
                rec.taken = true;
                rec.next_pc = target;
            }
            Inst::Ret { reg } => {
                rec.taken = true;
                rec.next_pc = self.reg(reg);
            }
            Inst::Halt => {
                self.halted = true;
                rec.next_pc = pc;
            }
        }

        if !self.halted {
            self.pc = rec.next_pc;
            self.retired += 1;
        }
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Assembler;
    use crate::Cond;

    fn run(asm: Assembler) -> ArchState {
        let prog = asm.finish();
        let mut st = ArchState::new(&prog);
        for _ in 0..100_000 {
            if st.halted() {
                break;
            }
            st.step(&prog).unwrap();
        }
        assert!(st.halted(), "program did not halt");
        st
    }

    #[test]
    fn arithmetic_loop_sums() {
        let mut asm = Assembler::new();
        let (i, acc) = (Reg::int(1), Reg::int(2));
        asm.li(i, 10);
        let top = asm.label();
        asm.bind(top);
        asm.add(acc, acc, i);
        asm.addi(i, i, -1);
        asm.branch(Cond::Ne, i, Reg::ZERO, top);
        asm.halt();
        let st = run(asm);
        assert_eq!(st.reg(Reg::int(2)), 55);
    }

    #[test]
    fn store_load_roundtrip_partial_words() {
        let mut asm = Assembler::new();
        let (base, v, out) = (Reg::int(1), Reg::int(2), Reg::int(3));
        asm.li(base, 0x1000);
        asm.li(v, -2i64); // 0xFFFF_FFFF_FFFF_FFFE
        asm.store(v, base, 0, MemWidth::B2);
        asm.load(out, base, 0, MemWidth::B2, Extension::Sign);
        asm.halt();
        let st = run(asm);
        assert_eq!(st.reg(Reg::int(3)), (-2i64) as u64);
    }

    #[test]
    fn zero_extension_of_partial_load() {
        let mut asm = Assembler::new();
        let (base, v, out) = (Reg::int(1), Reg::int(2), Reg::int(3));
        asm.li(base, 0x1000);
        asm.li(v, 0xFFFF);
        asm.store(v, base, 0, MemWidth::B1);
        asm.load(out, base, 0, MemWidth::B1, Extension::Zero);
        asm.halt();
        let st = run(asm);
        assert_eq!(st.reg(Reg::int(3)), 0xFF);
    }

    #[test]
    fn narrow_load_of_wide_store_reads_shifted_bytes() {
        let mut asm = Assembler::new();
        let (base, v, out) = (Reg::int(1), Reg::int(2), Reg::int(3));
        asm.li(base, 0x1000);
        asm.li(v, 0x1122_3344_5566_7788);
        asm.store(v, base, 0, MemWidth::B8);
        asm.load(out, base, 4, MemWidth::B2, Extension::Zero);
        asm.halt();
        let st = run(asm);
        assert_eq!(st.reg(Reg::int(3)), 0x3344);
    }

    #[test]
    fn lds_sts_roundtrip_converts_precision() {
        let mut asm = Assembler::new();
        let (base, f, out) = (Reg::int(1), Reg::float(0), Reg::float(1));
        asm.li(base, 0x2000);
        asm.li(f, 1.5f64.to_bits() as i64);
        asm.sts(f, base, 0);
        asm.lds(out, base, 0);
        asm.halt();
        let st = run(asm);
        assert_eq!(f64::from_bits(st.reg(Reg::float(1))), 1.5);
    }

    #[test]
    fn sts_narrows_precision() {
        // A value not representable in f32 loses precision through memory.
        let precise = 1.0f64 + 1e-12;
        let mut asm = Assembler::new();
        let (base, f, out) = (Reg::int(1), Reg::float(0), Reg::float(1));
        asm.li(base, 0x2000);
        asm.li(f, precise.to_bits() as i64);
        asm.sts(f, base, 0);
        asm.lds(out, base, 0);
        asm.halt();
        let st = run(asm);
        let roundtripped = f64::from_bits(st.reg(Reg::float(1)));
        assert_eq!(roundtripped, f64::from(precise as f32));
        assert_ne!(roundtripped, precise);
    }

    #[test]
    fn call_and_ret_link() {
        let mut asm = Assembler::new();
        let fun = asm.label();
        let done = asm.label();
        asm.call(fun);
        asm.jump(done);
        asm.bind(fun);
        asm.li(Reg::int(5), 99);
        asm.ret();
        asm.bind(done);
        asm.halt();
        let st = run(asm);
        assert_eq!(st.reg(Reg::int(5)), 99);
    }

    #[test]
    fn div_by_zero_is_total() {
        assert_eq!(alu_eval(AluKind::Div, 10, 0), 0);
        assert_eq!(alu_eval(AluKind::Div, 10, 3), 3);
        assert_eq!(alu_eval(AluKind::Div, (-10i64) as u64, 3), (-3i64) as u64);
    }

    #[test]
    fn unmapped_pc_errors() {
        let mut asm = Assembler::new();
        asm.li(Reg::int(0), 1); // falls off the end
        let prog = asm.finish();
        let mut st = ArchState::new(&prog);
        st.step(&prog).unwrap();
        assert!(matches!(
            st.step(&prog),
            Err(ExecError::UnmappedPc { pc: 4 })
        ));
    }

    #[test]
    fn halt_is_sticky() {
        let mut asm = Assembler::new();
        asm.halt();
        let prog = asm.finish();
        let mut st = ArchState::new(&prog);
        st.step(&prog).unwrap();
        assert!(st.halted());
        let retired = st.retired();
        st.step(&prog).unwrap();
        assert_eq!(st.retired(), retired);
    }

    #[test]
    fn store_memory_bits_truncates_and_converts() {
        assert_eq!(store_memory_bits(0xABCD, MemWidth::B1, false), 0xCD);
        assert_eq!(
            store_memory_bits(0x1122_3344_5566_7788, MemWidth::B8, false),
            0x1122_3344_5566_7788
        );
        let bits = store_memory_bits(2.0f64.to_bits(), MemWidth::B4, true);
        assert_eq!(f32::from_bits(bits as u32), 2.0);
    }
}
