//! Sparse byte-addressable memory.

use std::collections::HashMap;

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// A sparse little-endian byte-addressable memory.
///
/// Pages are allocated lazily on first write; reads of unmapped bytes
/// return zero. Cloning copies only the mapped pages, so the timing models
/// can cheaply keep a *commit-ordered* image separate from the
/// architectural image.
///
/// ```
/// use nosq_isa::Memory;
/// let mut mem = Memory::new();
/// mem.write(0x1000, 4, 0xdead_beef);
/// assert_eq!(mem.read(0x1000, 4), 0xdead_beef);
/// assert_eq!(mem.read(0x1002, 2), 0xdead);
/// assert_eq!(mem.read(0x9999, 8), 0); // unmapped reads as zero
/// ```
#[derive(Clone, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Number of mapped pages (diagnostic).
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(page) => page[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte, mapping the page if needed.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads `width` bytes (1–8) little-endian, possibly spanning pages.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 8.
    pub fn read(&self, addr: u64, width: u64) -> u64 {
        assert!((1..=8).contains(&width), "invalid access width {width}");
        let mut value = 0u64;
        for i in 0..width {
            value |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
        }
        value
    }

    /// Writes the low `width` bytes (1–8) of `value` little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 8.
    pub fn write(&mut self, addr: u64, width: u64, value: u64) {
        assert!((1..=8).contains(&width), "invalid access width {width}");
        for i in 0..width {
            self.write_u8(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Copies a byte slice into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), *b);
        }
    }
}

impl std::fmt::Debug for Memory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memory")
            .field("mapped_pages", &self.pages.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut mem = Memory::new();
        for width in 1..=8u64 {
            let value = 0x1122_3344_5566_7788u64;
            mem.write(0x2000, width, value);
            let mask = if width == 8 {
                u64::MAX
            } else {
                (1u64 << (8 * width)) - 1
            };
            assert_eq!(mem.read(0x2000, width), value & mask, "width {width}");
        }
    }

    #[test]
    fn little_endian_layout() {
        let mut mem = Memory::new();
        mem.write(0x100, 4, 0xAABBCCDD);
        assert_eq!(mem.read_u8(0x100), 0xDD);
        assert_eq!(mem.read_u8(0x101), 0xCC);
        assert_eq!(mem.read_u8(0x102), 0xBB);
        assert_eq!(mem.read_u8(0x103), 0xAA);
    }

    #[test]
    fn cross_page_access() {
        let mut mem = Memory::new();
        let addr = (1 << PAGE_SHIFT) - 3; // last 3 bytes of page 0
        mem.write(addr, 8, 0x0102_0304_0506_0708);
        assert_eq!(mem.read(addr, 8), 0x0102_0304_0506_0708);
        assert_eq!(mem.mapped_pages(), 2);
    }

    #[test]
    fn unmapped_reads_zero() {
        let mem = Memory::new();
        assert_eq!(mem.read(0xdead_beef, 8), 0);
    }

    #[test]
    fn clone_is_independent() {
        let mut a = Memory::new();
        a.write(0, 8, 7);
        let mut b = a.clone();
        b.write(0, 8, 9);
        assert_eq!(a.read(0, 8), 7);
        assert_eq!(b.read(0, 8), 9);
    }

    #[test]
    fn write_bytes_places_each_byte() {
        let mut mem = Memory::new();
        mem.write_bytes(0x40, &[1, 2, 3]);
        assert_eq!(mem.read(0x40, 1), 1);
        assert_eq!(mem.read(0x41, 1), 2);
        assert_eq!(mem.read(0x42, 1), 3);
    }

    #[test]
    #[should_panic(expected = "invalid access width")]
    fn zero_width_panics() {
        let mem = Memory::new();
        let _ = mem.read(0, 0);
    }
}
