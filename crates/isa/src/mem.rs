//! Sparse byte-addressable memory.

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// A sparse little-endian byte-addressable memory.
///
/// Pages are allocated lazily on first write; reads of unmapped bytes
/// return zero. Cloning copies only the mapped pages, so the timing models
/// can cheaply keep a *commit-ordered* image separate from the
/// architectural image.
///
/// Internally the page table is a small open-addressing hash index
/// (multiplicative hashing, linear probing) over a flat page arena —
/// a page lookup is a couple of L1 probes instead of a SipHash
/// computation, and same-page accesses (the overwhelmingly common case)
/// resolve the page exactly once.
///
/// ```
/// use nosq_isa::Memory;
/// let mut mem = Memory::new();
/// mem.write(0x1000, 4, 0xdead_beef);
/// assert_eq!(mem.read(0x1000, 4), 0xdead_beef);
/// assert_eq!(mem.read(0x1002, 2), 0xdead);
/// assert_eq!(mem.read(0x9999, 8), 0); // unmapped reads as zero
/// ```
#[derive(Clone)]
pub struct Memory {
    /// Open-addressing index: `(page_number + 1, page_arena_index)`;
    /// tag 0 means empty. Power-of-two length.
    index: Vec<(u64, u32)>,
    pages: Vec<Box<[u8; PAGE_SIZE]>>,
}

impl Default for Memory {
    fn default() -> Memory {
        Memory::new()
    }
}

#[inline]
fn page_hash(page_num: u64, mask: usize) -> usize {
    ((page_num.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 32) as usize & mask
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Memory {
        Memory {
            index: vec![(0, 0); 64],
            pages: Vec::new(),
        }
    }

    /// Number of mapped pages (diagnostic).
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }

    /// Finds the arena index of `page_num`'s page, if mapped.
    #[inline]
    fn find(&self, page_num: u64) -> Option<usize> {
        let tag = page_num + 1;
        let mask = self.index.len() - 1;
        let mut i = page_hash(page_num, mask);
        loop {
            let (t, p) = self.index[i];
            if t == tag {
                return Some(p as usize);
            }
            if t == 0 {
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    /// Finds or maps the page for `page_num`.
    fn map(&mut self, page_num: u64) -> usize {
        if let Some(p) = self.find(page_num) {
            return p;
        }
        if (self.pages.len() + 1) * 8 >= self.index.len() * 7 {
            self.grow_index();
        }
        let tag = page_num + 1;
        let mask = self.index.len() - 1;
        let mut i = page_hash(page_num, mask);
        while self.index[i].0 != 0 {
            i = (i + 1) & mask;
        }
        let page = self.pages.len() as u32;
        self.pages.push(Box::new([0u8; PAGE_SIZE]));
        self.index[i] = (tag, page);
        page as usize
    }

    fn grow_index(&mut self) {
        let old = std::mem::replace(&mut self.index, vec![(0, 0); 0]);
        self.index = vec![(0, 0); old.len() * 2];
        let mask = self.index.len() - 1;
        for (tag, page) in old {
            if tag == 0 {
                continue;
            }
            let mut i = page_hash(tag - 1, mask);
            while self.index[i].0 != 0 {
                i = (i + 1) & mask;
            }
            self.index[i] = (tag, page);
        }
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.find(addr >> PAGE_SHIFT) {
            Some(page) => self.pages[page][(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte, mapping the page if needed.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self.map(addr >> PAGE_SHIFT);
        self.pages[page][(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads `width` bytes (1–8) little-endian, possibly spanning pages.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 8.
    pub fn read(&self, addr: u64, width: u64) -> u64 {
        assert!((1..=8).contains(&width), "invalid access width {width}");
        // Fast path: the whole access lands in one page — a single page
        // lookup instead of one per byte (the common case by far; only
        // accesses straddling a 4 KiB boundary take the byte loop).
        if addr >> PAGE_SHIFT == addr.wrapping_add(width - 1) >> PAGE_SHIFT {
            return match self.find(addr >> PAGE_SHIFT) {
                Some(page) => {
                    let offset = (addr & PAGE_MASK) as usize;
                    let mut value = 0u64;
                    for (i, b) in self.pages[page][offset..offset + width as usize]
                        .iter()
                        .enumerate()
                    {
                        value |= (*b as u64) << (8 * i);
                    }
                    value
                }
                None => 0,
            };
        }
        let mut value = 0u64;
        for i in 0..width {
            value |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
        }
        value
    }

    /// Writes the low `width` bytes (1–8) of `value` little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 8.
    pub fn write(&mut self, addr: u64, width: u64, value: u64) {
        assert!((1..=8).contains(&width), "invalid access width {width}");
        // Fast path mirroring `read`: one page lookup for a same-page
        // access.
        if addr >> PAGE_SHIFT == addr.wrapping_add(width - 1) >> PAGE_SHIFT {
            let page = self.map(addr >> PAGE_SHIFT);
            let offset = (addr & PAGE_MASK) as usize;
            for (i, b) in self.pages[page][offset..offset + width as usize]
                .iter_mut()
                .enumerate()
            {
                *b = (value >> (8 * i)) as u8;
            }
            return;
        }
        for i in 0..width {
            self.write_u8(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Copies a byte slice into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), *b);
        }
    }
}

// Canonical encoding: mapped pages sorted by page number, each as
// `page_num` + raw bytes. Two memories holding the same bytes encode
// identically regardless of the order their pages were mapped, so the
// encoded form can stand in for equality in bit-identity pins.
impl nosq_wire::Wire for Memory {
    fn enc(&self, e: &mut nosq_wire::Enc) {
        let mut mapped: Vec<(u64, u32)> = self
            .index
            .iter()
            .filter(|(tag, _)| *tag != 0)
            .map(|&(tag, page)| (tag - 1, page))
            .collect();
        mapped.sort_unstable_by_key(|&(page_num, _)| page_num);
        e.put_u64(mapped.len() as u64);
        for (page_num, page) in mapped {
            e.put_u64(page_num);
            e.put_bytes(&self.pages[page as usize][..]);
        }
    }

    fn dec(d: &mut nosq_wire::Dec) -> Result<Self, nosq_wire::WireError> {
        let count = d.take_u64()?;
        if count > (d.remaining() / (8 + PAGE_SIZE)) as u64 {
            return Err(nosq_wire::WireError::Invalid("memory page count"));
        }
        let mut mem = Memory::new();
        for _ in 0..count {
            let page_num = d.take_u64()?;
            if page_num == u64::MAX {
                // Tag arithmetic reserves page_num + 1; the top page is
                // unreachable through the byte-addressed API anyway.
                return Err(nosq_wire::WireError::Invalid("memory page number"));
            }
            let bytes = d.take(PAGE_SIZE)?;
            let page = mem.map(page_num);
            mem.pages[page].copy_from_slice(bytes);
        }
        Ok(mem)
    }
}

impl std::fmt::Debug for Memory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memory")
            .field("mapped_pages", &self.pages.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_stays_send_and_sync() {
        // Embedders share `&Program`/`&Memory` across worker threads;
        // losing these auto-traits would be a breaking API change.
        fn assert_sync_send<T: Sync + Send>() {}
        assert_sync_send::<Memory>();
    }

    #[test]
    fn roundtrip_all_widths() {
        let mut mem = Memory::new();
        for width in 1..=8u64 {
            let value = 0x1122_3344_5566_7788u64;
            mem.write(0x2000, width, value);
            let mask = if width == 8 {
                u64::MAX
            } else {
                (1u64 << (8 * width)) - 1
            };
            assert_eq!(mem.read(0x2000, width), value & mask, "width {width}");
        }
    }

    #[test]
    fn little_endian_layout() {
        let mut mem = Memory::new();
        mem.write(0x100, 4, 0xAABBCCDD);
        assert_eq!(mem.read_u8(0x100), 0xDD);
        assert_eq!(mem.read_u8(0x101), 0xCC);
        assert_eq!(mem.read_u8(0x102), 0xBB);
        assert_eq!(mem.read_u8(0x103), 0xAA);
    }

    #[test]
    fn cross_page_access() {
        let mut mem = Memory::new();
        let addr = (1 << PAGE_SHIFT) - 3; // last 3 bytes of page 0
        mem.write(addr, 8, 0x0102_0304_0506_0708);
        assert_eq!(mem.read(addr, 8), 0x0102_0304_0506_0708);
        assert_eq!(mem.mapped_pages(), 2);
    }

    #[test]
    fn unmapped_reads_zero() {
        let mem = Memory::new();
        assert_eq!(mem.read(0xdead_beef, 8), 0);
    }

    #[test]
    fn clone_is_independent() {
        let mut a = Memory::new();
        a.write(0, 8, 7);
        let mut b = a.clone();
        b.write(0, 8, 9);
        assert_eq!(a.read(0, 8), 7);
        assert_eq!(b.read(0, 8), 9);
    }

    #[test]
    fn write_bytes_places_each_byte() {
        let mut mem = Memory::new();
        mem.write_bytes(0x40, &[1, 2, 3]);
        assert_eq!(mem.read(0x40, 1), 1);
        assert_eq!(mem.read(0x41, 1), 2);
        assert_eq!(mem.read(0x42, 1), 3);
    }

    #[test]
    fn many_pages_grow_the_index() {
        let mut mem = Memory::new();
        for p in 0..1000u64 {
            mem.write(p << PAGE_SHIFT, 8, p + 1);
        }
        for p in 0..1000u64 {
            assert_eq!(mem.read(p << PAGE_SHIFT, 8), p + 1);
        }
        assert_eq!(mem.mapped_pages(), 1000);
    }

    #[test]
    fn high_addresses_map_cleanly() {
        let mut mem = Memory::new();
        mem.write(u64::MAX - 10, 4, 0xABCD);
        assert_eq!(mem.read(u64::MAX - 10, 4), 0xABCD);
    }

    #[test]
    #[should_panic(expected = "invalid access width")]
    fn zero_width_panics() {
        let mem = Memory::new();
        let _ = mem.read(0, 0);
    }
}
