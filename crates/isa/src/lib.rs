//! # nosq-isa
//!
//! A from-scratch 64-bit Alpha-like load/store RISC ISA used by the NoSQ
//! microarchitecture simulator (Sha, Martin & Roth, MICRO-39 2006).
//!
//! The original paper evaluates NoSQ on the Alpha AXP user-level ISA via
//! SimpleScalar. This crate provides the ISA *properties* the NoSQ
//! mechanisms depend on, without reproducing Alpha encodings:
//!
//! * a 64-register flat register file with a hardwired zero register,
//! * base+displacement addressing with 1/2/4/8-byte accesses,
//! * partial-word load semantics (sign or zero extension), and
//! * the Alpha `lds`/`sts`-style conversion between an in-memory 32-bit
//!   IEEE-754 single-precision float and the in-register 64-bit format —
//!   the extra transformation NoSQ's partial-word bypassing must mimic
//!   (paper §3.5).
//!
//! The crate contains three layers:
//!
//! * [`inst`] — the instruction set ([`Inst`], [`AluKind`], [`MemWidth`], ...),
//! * [`program`] — [`Program`] and the [`Assembler`] used to build workloads,
//! * [`exec`] — the architectural executor ([`ArchState`]) that runs a
//!   program and yields one [`ExecRecord`] per dynamic instruction. The
//!   timing models are *functional-first*: they replay these records.
//!
//! ## Example
//!
//! ```
//! use nosq_isa::{Assembler, Reg, MemWidth, Extension, ArchState};
//!
//! let mut asm = Assembler::new();
//! let r1 = Reg::int(1);
//! let r2 = Reg::int(2);
//! asm.li(r1, 0x1000);          // base address
//! asm.li(r2, 42);
//! asm.store(r2, r1, 0, MemWidth::B8);
//! asm.load(r2, r1, 0, MemWidth::B8, Extension::Zero);
//! asm.halt();
//! let prog = asm.finish();
//!
//! let mut state = ArchState::new(&prog);
//! while !state.halted() {
//!     state.step(&prog).unwrap();
//! }
//! assert_eq!(state.reg(r2), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod inst;
pub mod mem;
pub mod program;

pub use exec::{ArchState, ExecError, ExecRecord};
pub use inst::{AluKind, Cond, Extension, Inst, InstClass, MemWidth, Reg, Src};
pub use mem::Memory;
pub use program::{Assembler, Label, Program};

/// Byte size of one instruction slot; PCs advance by this amount.
pub const INST_BYTES: u64 = 4;
