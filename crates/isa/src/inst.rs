//! Instruction set definition: registers, opcodes, and instruction forms.

use std::fmt;

/// An architectural register.
///
/// The file holds 64 registers: indices 0–30 are general-purpose integer
/// registers, 31 is the stack pointer by convention, 32–62 are
/// floating-point registers, and 63 is hardwired to zero (like Alpha's
/// R31/F31).
///
/// ```
/// use nosq_isa::Reg;
/// assert!(Reg::ZERO.is_zero());
/// assert_eq!(Reg::int(5).index(), 5);
/// assert_eq!(Reg::float(5).index(), 37);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// Number of architectural registers.
    pub const COUNT: usize = 64;
    /// The hardwired zero register; reads yield 0, writes are discarded.
    pub const ZERO: Reg = Reg(63);
    /// Conventional stack pointer.
    pub const SP: Reg = Reg(31);
    /// Conventional link (return address) register.
    pub const LINK: Reg = Reg(30);

    /// Creates a register from a raw index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= Reg::COUNT`.
    pub fn new(index: u8) -> Reg {
        assert!(
            (index as usize) < Reg::COUNT,
            "register index {index} out of range"
        );
        Reg(index)
    }

    /// The `n`-th integer register (0–29).
    ///
    /// # Panics
    ///
    /// Panics if `n > 29` (30 and 31 are `LINK`/`SP`).
    pub fn int(n: u8) -> Reg {
        assert!(n <= 29, "integer register {n} out of range (0-29)");
        Reg(n)
    }

    /// The `n`-th floating-point register (0–30).
    ///
    /// # Panics
    ///
    /// Panics if `n > 30`.
    pub fn float(n: u8) -> Reg {
        assert!(n <= 30, "float register {n} out of range (0-30)");
        Reg(32 + n)
    }

    /// Raw index into the architectural register file.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired zero register.
    pub fn is_zero(self) -> bool {
        self == Reg::ZERO
    }
}

impl nosq_wire::Wire for Reg {
    fn enc(&self, e: &mut nosq_wire::Enc) {
        e.put_u8(self.0);
    }
    fn dec(d: &mut nosq_wire::Dec) -> Result<Self, nosq_wire::WireError> {
        let index = d.take_u8()?;
        if (index as usize) >= Reg::COUNT {
            return Err(nosq_wire::WireError::Invalid("register index"));
        }
        Ok(Reg(index))
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            63 => write!(f, "zero"),
            31 => write!(f, "sp"),
            30 => write!(f, "ra"),
            n if n < 32 => write!(f, "r{n}"),
            n => write!(f, "f{}", n - 32),
        }
    }
}

/// ALU operation kinds.
///
/// Integer kinds operate on the 64-bit two's-complement register value;
/// float kinds interpret register bits as IEEE-754 binary64.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum AluKind {
    /// 64-bit wrapping add.
    Add,
    /// 64-bit wrapping subtract.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (amount mod 64).
    Shl,
    /// Logical shift right (amount mod 64).
    Shr,
    /// Arithmetic shift right (amount mod 64).
    Sra,
    /// Signed set-less-than: `rd = (ra < src) as u64`.
    Slt,
    /// Unsigned set-less-than.
    Sltu,
    /// Set-equal: `rd = (ra == src) as u64`.
    Seq,
    /// 64-bit wrapping multiply (complex pipe).
    Mul,
    /// Signed divide (complex pipe); divide by zero yields 0.
    Div,
    /// binary64 add (complex pipe).
    FAdd,
    /// binary64 subtract (complex pipe).
    FSub,
    /// binary64 multiply (complex pipe).
    FMul,
    /// binary64 divide (complex pipe).
    FDiv,
    /// Signed 64-bit integer to binary64 conversion (complex pipe).
    IToF,
    /// binary64 to signed 64-bit integer conversion, truncating (complex pipe).
    FToI,
}

impl AluKind {
    /// Whether the paper's machine would issue this to a complex
    /// integer/FP pipe rather than a simple integer ALU.
    pub fn is_complex(self) -> bool {
        matches!(
            self,
            AluKind::Mul
                | AluKind::Div
                | AluKind::FAdd
                | AluKind::FSub
                | AluKind::FMul
                | AluKind::FDiv
                | AluKind::IToF
                | AluKind::FToI
        )
    }
}

/// Branch comparison conditions (signed compare of `ra` against `rb`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Taken if `ra == rb`.
    Eq,
    /// Taken if `ra != rb`.
    Ne,
    /// Taken if `ra < rb` (signed).
    Lt,
    /// Taken if `ra >= rb` (signed).
    Ge,
    /// Taken if `ra <= rb` (signed).
    Le,
    /// Taken if `ra > rb` (signed).
    Gt,
}

impl Cond {
    /// Evaluates the condition on two register values.
    pub fn eval(self, a: u64, b: u64) -> bool {
        let (sa, sb) = (a as i64, b as i64);
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => sa < sb,
            Cond::Ge => sa >= sb,
            Cond::Le => sa <= sb,
            Cond::Gt => sa > sb,
        }
    }
}

/// Memory access width in bytes.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemWidth {
    /// 1 byte.
    B1,
    /// 2 bytes.
    B2,
    /// 4 bytes.
    B4,
    /// 8 bytes (full word; the register width).
    B8,
}

impl MemWidth {
    /// Access size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::B1 => 1,
            MemWidth::B2 => 2,
            MemWidth::B4 => 4,
            MemWidth::B8 => 8,
        }
    }

    /// Whether this is a partial-word (sub-8-byte) access.
    pub fn is_partial(self) -> bool {
        self != MemWidth::B8
    }

    /// All widths, narrowest first.
    pub fn all() -> [MemWidth; 4] {
        [MemWidth::B1, MemWidth::B2, MemWidth::B4, MemWidth::B8]
    }
}

/// How a partial-word load widens its value to 64 bits.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Extension {
    /// Zero-extend.
    Zero,
    /// Sign-extend.
    Sign,
    /// Alpha `lds`-style: the 4 memory bytes are IEEE-754 binary32 and the
    /// register receives the binary64 representation of the same value.
    /// Only meaningful with [`MemWidth::B4`].
    Float32,
}

/// The second ALU source operand: a register or an immediate.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Src {
    /// Register operand.
    Reg(Reg),
    /// Immediate operand.
    Imm(i64),
}

/// One machine instruction.
///
/// PCs are byte addresses; every instruction occupies
/// [`INST_BYTES`](crate::INST_BYTES) bytes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Inst {
    /// Register/immediate ALU operation: `rd = ra <kind> src`.
    Alu {
        /// Operation.
        kind: AluKind,
        /// Destination register.
        rd: Reg,
        /// First source register.
        ra: Reg,
        /// Second source operand.
        src: Src,
    },
    /// Load: `rd = extend(mem[ra + ofs], width, ext)`.
    Load {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Signed displacement.
        ofs: i32,
        /// Access width.
        width: MemWidth,
        /// Widening behaviour for partial words.
        ext: Extension,
    },
    /// Store: `mem[ra + ofs] = truncate(data, width)`.
    Store {
        /// Data register.
        data: Reg,
        /// Base address register.
        base: Reg,
        /// Signed displacement.
        ofs: i32,
        /// Access width.
        width: MemWidth,
        /// Alpha `sts`-style: the register holds binary64 and memory
        /// receives the binary32 representation (requires `width == B4`).
        float32: bool,
    },
    /// Conditional direct branch.
    Branch {
        /// Condition.
        cond: Cond,
        /// First compared register.
        ra: Reg,
        /// Second compared register.
        rb: Reg,
        /// Taken-path target PC.
        target: u64,
    },
    /// Unconditional direct jump.
    Jump {
        /// Target PC.
        target: u64,
    },
    /// Direct call: `link = pc + 4; pc = target`.
    Call {
        /// Target PC.
        target: u64,
        /// Link register receiving the return address.
        link: Reg,
    },
    /// Indirect return: `pc = reg`.
    Ret {
        /// Register holding the return address.
        reg: Reg,
    },
    /// Stops execution.
    Halt,
}

/// Coarse instruction class used by the timing models for issue-port
/// arbitration and latency selection.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Single-cycle integer ALU operation.
    SimpleInt,
    /// Multi-cycle integer or floating-point operation.
    Complex,
    /// Control transfer (branch, jump, call, return).
    Branch,
    /// Memory read.
    Load,
    /// Memory write.
    Store,
    /// Pipeline terminator.
    Halt,
}

impl nosq_wire::Wire for InstClass {
    fn enc(&self, e: &mut nosq_wire::Enc) {
        e.put_u8(match self {
            InstClass::SimpleInt => 0,
            InstClass::Complex => 1,
            InstClass::Branch => 2,
            InstClass::Load => 3,
            InstClass::Store => 4,
            InstClass::Halt => 5,
        });
    }
    fn dec(d: &mut nosq_wire::Dec) -> Result<Self, nosq_wire::WireError> {
        Ok(match d.take_u8()? {
            0 => InstClass::SimpleInt,
            1 => InstClass::Complex,
            2 => InstClass::Branch,
            3 => InstClass::Load,
            4 => InstClass::Store,
            5 => InstClass::Halt,
            _ => return Err(nosq_wire::WireError::Invalid("instruction class")),
        })
    }
}

impl Inst {
    /// Classifies this instruction for the timing model.
    pub fn class(&self) -> InstClass {
        match self {
            Inst::Alu { kind, .. } if kind.is_complex() => InstClass::Complex,
            Inst::Alu { .. } => InstClass::SimpleInt,
            Inst::Load { .. } => InstClass::Load,
            Inst::Store { .. } => InstClass::Store,
            Inst::Branch { .. } | Inst::Jump { .. } | Inst::Call { .. } | Inst::Ret { .. } => {
                InstClass::Branch
            }
            Inst::Halt => InstClass::Halt,
        }
    }

    /// Destination register, if any (zero-register writes report `None`).
    pub fn dest(&self) -> Option<Reg> {
        let rd = match self {
            Inst::Alu { rd, .. } => *rd,
            Inst::Load { rd, .. } => *rd,
            Inst::Call { link, .. } => *link,
            _ => return None,
        };
        (!rd.is_zero()).then_some(rd)
    }

    /// Source registers, in a fixed-size option array.
    ///
    /// The zero register is reported as a source (its value is always
    /// ready, so timing models may ignore it).
    pub fn sources(&self) -> [Option<Reg>; 2] {
        match self {
            Inst::Alu { ra, src, .. } => match src {
                Src::Reg(rb) => [Some(*ra), Some(*rb)],
                Src::Imm(_) => [Some(*ra), None],
            },
            Inst::Load { base, .. } => [Some(*base), None],
            Inst::Store { data, base, .. } => [Some(*base), Some(*data)],
            Inst::Branch { ra, rb, .. } => [Some(*ra), Some(*rb)],
            Inst::Ret { reg } => [Some(*reg), None],
            Inst::Jump { .. } | Inst::Call { .. } | Inst::Halt => [None, None],
        }
    }

    /// Whether this is a control-transfer instruction.
    pub fn is_control(&self) -> bool {
        self.class() == InstClass::Branch
    }

    /// Whether this is a conditional branch (as opposed to an
    /// unconditional jump/call/return).
    pub fn is_conditional(&self) -> bool {
        matches!(self, Inst::Branch { .. })
    }

    /// Memory access width for loads and stores.
    pub fn mem_width(&self) -> Option<MemWidth> {
        match self {
            Inst::Load { width, .. } | Inst::Store { width, .. } => Some(*width),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_banks_do_not_overlap() {
        assert_eq!(Reg::int(0).index(), 0);
        assert_eq!(Reg::int(29).index(), 29);
        assert_eq!(Reg::float(0).index(), 32);
        assert_eq!(Reg::float(30).index(), 62);
        assert_eq!(Reg::ZERO.index(), 63);
        assert_ne!(Reg::SP, Reg::LINK);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_index_out_of_range_panics() {
        let _ = Reg::new(64);
    }

    #[test]
    fn cond_eval_signed_semantics() {
        let neg1 = (-1i64) as u64;
        assert!(Cond::Lt.eval(neg1, 0));
        assert!(!Cond::Lt.eval(0, neg1));
        assert!(Cond::Ge.eval(0, neg1));
        assert!(Cond::Eq.eval(5, 5));
        assert!(Cond::Ne.eval(5, 6));
        assert!(Cond::Le.eval(5, 5));
        assert!(Cond::Gt.eval(6, 5));
    }

    #[test]
    fn mem_width_bytes() {
        assert_eq!(MemWidth::B1.bytes(), 1);
        assert_eq!(MemWidth::B8.bytes(), 8);
        assert!(MemWidth::B4.is_partial());
        assert!(!MemWidth::B8.is_partial());
    }

    #[test]
    fn classification() {
        let add = Inst::Alu {
            kind: AluKind::Add,
            rd: Reg::int(1),
            ra: Reg::int(2),
            src: Src::Imm(1),
        };
        assert_eq!(add.class(), InstClass::SimpleInt);
        let mul = Inst::Alu {
            kind: AluKind::Mul,
            rd: Reg::int(1),
            ra: Reg::int(2),
            src: Src::Reg(Reg::int(3)),
        };
        assert_eq!(mul.class(), InstClass::Complex);
        let ld = Inst::Load {
            rd: Reg::int(1),
            base: Reg::SP,
            ofs: 8,
            width: MemWidth::B8,
            ext: Extension::Zero,
        };
        assert_eq!(ld.class(), InstClass::Load);
        assert_eq!(ld.dest(), Some(Reg::int(1)));
        assert_eq!(ld.sources(), [Some(Reg::SP), None]);
    }

    #[test]
    fn zero_register_dest_is_none() {
        let add = Inst::Alu {
            kind: AluKind::Add,
            rd: Reg::ZERO,
            ra: Reg::int(2),
            src: Src::Imm(1),
        };
        assert_eq!(add.dest(), None);
    }

    #[test]
    fn store_sources_include_data_and_base() {
        let st = Inst::Store {
            data: Reg::int(4),
            base: Reg::int(5),
            ofs: 0,
            width: MemWidth::B2,
            float32: false,
        };
        assert_eq!(st.sources(), [Some(Reg::int(5)), Some(Reg::int(4))]);
        assert_eq!(st.dest(), None);
        assert_eq!(st.mem_width(), Some(MemWidth::B2));
    }
}
