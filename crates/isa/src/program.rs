//! Programs and the assembler used to construct them.

use crate::inst::{AluKind, Cond, Extension, Inst, MemWidth, Reg, Src};
use crate::mem::Memory;
use crate::INST_BYTES;

/// A forward-referenceable code label handed out by [`Assembler::label`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Label(usize);

/// An executable program: an instruction image plus initial data segments.
#[derive(Clone, Debug)]
pub struct Program {
    insts: Vec<Inst>,
    data: Vec<(u64, Vec<u8>)>,
}

impl Program {
    /// The instruction at byte address `pc`, if mapped.
    pub fn inst_at(&self, pc: u64) -> Option<&Inst> {
        if !pc.is_multiple_of(INST_BYTES) {
            return None;
        }
        self.insts.get((pc / INST_BYTES) as usize)
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Entry PC (always 0).
    pub fn entry(&self) -> u64 {
        0
    }

    /// Builds the initial memory image from the program's data segments.
    pub fn initial_memory(&self) -> Memory {
        let mut mem = Memory::new();
        for (addr, bytes) in &self.data {
            mem.write_bytes(*addr, bytes);
        }
        mem
    }

    /// Iterates over static instructions with their PCs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Inst)> {
        self.insts
            .iter()
            .enumerate()
            .map(|(i, inst)| (i as u64 * INST_BYTES, inst))
    }
}

/// Incremental program builder with label fixups.
///
/// Emit methods append one instruction each. Branch targets may reference
/// labels bound later; [`Assembler::finish`] patches them.
///
/// ```
/// use nosq_isa::{Assembler, Reg, Cond};
/// let mut asm = Assembler::new();
/// let r1 = Reg::int(1);
/// asm.li(r1, 3);
/// let top = asm.label();
/// asm.bind(top);
/// asm.addi(r1, r1, -1);
/// asm.branch(Cond::Ne, r1, Reg::ZERO, top);
/// asm.halt();
/// let prog = asm.finish();
/// assert_eq!(prog.len(), 4);
/// ```
#[derive(Debug, Default)]
pub struct Assembler {
    insts: Vec<Inst>,
    labels: Vec<Option<u64>>,
    fixups: Vec<(usize, Label)>,
    data: Vec<(u64, Vec<u8>)>,
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// Current PC (address of the next emitted instruction).
    pub fn here(&self) -> u64 {
        self.insts.len() as u64 * INST_BYTES
    }

    /// Allocates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current PC.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(
            self.labels[label.0].is_none(),
            "label bound twice at pc {:#x}",
            self.here()
        );
        self.labels[label.0] = Some(self.here());
    }

    /// Adds an initial data segment.
    pub fn data_bytes(&mut self, addr: u64, bytes: Vec<u8>) {
        self.data.push((addr, bytes));
    }

    /// Adds an initial data segment of little-endian u64 words.
    pub fn data_u64s(&mut self, addr: u64, words: &[u64]) {
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.data.push((addr, bytes));
    }

    fn emit(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    /// Emits a raw instruction.
    pub fn inst(&mut self, inst: Inst) {
        self.emit(inst);
    }

    /// `rd = ra <kind> rb`.
    pub fn alu(&mut self, kind: AluKind, rd: Reg, ra: Reg, rb: Reg) {
        self.emit(Inst::Alu {
            kind,
            rd,
            ra,
            src: Src::Reg(rb),
        });
    }

    /// `rd = ra <kind> imm`.
    pub fn alui(&mut self, kind: AluKind, rd: Reg, ra: Reg, imm: i64) {
        self.emit(Inst::Alu {
            kind,
            rd,
            ra,
            src: Src::Imm(imm),
        });
    }

    /// `rd = ra + rb`.
    pub fn add(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.alu(AluKind::Add, rd, ra, rb);
    }

    /// `rd = ra + imm`.
    pub fn addi(&mut self, rd: Reg, ra: Reg, imm: i64) {
        self.alui(AluKind::Add, rd, ra, imm);
    }

    /// `rd = ra - rb`.
    pub fn sub(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.alu(AluKind::Sub, rd, ra, rb);
    }

    /// `rd = ra * rb` (complex pipe).
    pub fn mul(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.alu(AluKind::Mul, rd, ra, rb);
    }

    /// `rd = ra & imm`.
    pub fn andi(&mut self, rd: Reg, ra: Reg, imm: i64) {
        self.alui(AluKind::And, rd, ra, imm);
    }

    /// `rd = ra ^ rb`.
    pub fn xor(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.alu(AluKind::Xor, rd, ra, rb);
    }

    /// `rd = ra << imm`.
    pub fn shli(&mut self, rd: Reg, ra: Reg, imm: i64) {
        self.alui(AluKind::Shl, rd, ra, imm);
    }

    /// `rd = ra >> imm` (logical).
    pub fn shri(&mut self, rd: Reg, ra: Reg, imm: i64) {
        self.alui(AluKind::Shr, rd, ra, imm);
    }

    /// Loads a 64-bit immediate: `rd = imm`.
    pub fn li(&mut self, rd: Reg, imm: i64) {
        self.alui(AluKind::Add, rd, Reg::ZERO, imm);
    }

    /// Register move: `rd = ra`.
    pub fn mov(&mut self, rd: Reg, ra: Reg) {
        self.alui(AluKind::Add, rd, ra, 0);
    }

    /// binary64 add.
    pub fn fadd(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.alu(AluKind::FAdd, rd, ra, rb);
    }

    /// binary64 multiply.
    pub fn fmul(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        self.alu(AluKind::FMul, rd, ra, rb);
    }

    /// `rd = extend(mem[base + ofs])`.
    pub fn load(&mut self, rd: Reg, base: Reg, ofs: i32, width: MemWidth, ext: Extension) {
        self.emit(Inst::Load {
            rd,
            base,
            ofs,
            width,
            ext,
        });
    }

    /// `mem[base + ofs] = truncate(data)`.
    pub fn store(&mut self, data: Reg, base: Reg, ofs: i32, width: MemWidth) {
        self.emit(Inst::Store {
            data,
            base,
            ofs,
            width,
            float32: false,
        });
    }

    /// Alpha `lds`: loads binary32 memory into a binary64 register.
    pub fn lds(&mut self, rd: Reg, base: Reg, ofs: i32) {
        self.emit(Inst::Load {
            rd,
            base,
            ofs,
            width: MemWidth::B4,
            ext: Extension::Float32,
        });
    }

    /// Alpha `sts`: stores a binary64 register as binary32 memory.
    pub fn sts(&mut self, data: Reg, base: Reg, ofs: i32) {
        self.emit(Inst::Store {
            data,
            base,
            ofs,
            width: MemWidth::B4,
            float32: true,
        });
    }

    /// Conditional branch to a label.
    pub fn branch(&mut self, cond: Cond, ra: Reg, rb: Reg, target: Label) {
        self.fixups.push((self.insts.len(), target));
        self.emit(Inst::Branch {
            cond,
            ra,
            rb,
            target: 0,
        });
    }

    /// Unconditional jump to a label.
    pub fn jump(&mut self, target: Label) {
        self.fixups.push((self.insts.len(), target));
        self.emit(Inst::Jump { target: 0 });
    }

    /// Direct call to a label, linking through [`Reg::LINK`].
    pub fn call(&mut self, target: Label) {
        self.fixups.push((self.insts.len(), target));
        self.emit(Inst::Call {
            target: 0,
            link: Reg::LINK,
        });
    }

    /// Direct call to a label linking through an explicit register (for
    /// nested calls that must not clobber [`Reg::LINK`]).
    pub fn call_linked(&mut self, target: Label, link: Reg) {
        self.fixups.push((self.insts.len(), target));
        self.emit(Inst::Call { target: 0, link });
    }

    /// Indirect return through [`Reg::LINK`].
    pub fn ret(&mut self) {
        self.emit(Inst::Ret { reg: Reg::LINK });
    }

    /// Indirect return through an explicit register.
    pub fn ret_reg(&mut self, reg: Reg) {
        self.emit(Inst::Ret { reg });
    }

    /// Terminates the program.
    pub fn halt(&mut self) {
        self.emit(Inst::Halt);
    }

    /// Resolves labels and produces the final [`Program`].
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    pub fn finish(mut self) -> Program {
        for (idx, label) in &self.fixups {
            let pc = self.labels[label.0]
                .unwrap_or_else(|| panic!("unbound label {:?} referenced at inst {idx}", label));
            match &mut self.insts[*idx] {
                Inst::Branch { target, .. } | Inst::Jump { target } | Inst::Call { target, .. } => {
                    *target = pc
                }
                other => panic!("fixup on non-control instruction {other:?}"),
            }
        }
        Program {
            insts: self.insts,
            data: self.data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_label_is_patched() {
        let mut asm = Assembler::new();
        let skip = asm.label();
        asm.jump(skip);
        asm.li(Reg::int(0), 1);
        asm.bind(skip);
        asm.halt();
        let prog = asm.finish();
        match prog.inst_at(0) {
            Some(Inst::Jump { target }) => assert_eq!(*target, 2 * INST_BYTES),
            other => panic!("expected jump, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut asm = Assembler::new();
        let l = asm.label();
        asm.jump(l);
        let _ = asm.finish();
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut asm = Assembler::new();
        let l = asm.label();
        asm.bind(l);
        asm.bind(l);
    }

    #[test]
    fn data_segments_populate_memory() {
        let mut asm = Assembler::new();
        asm.data_u64s(0x1000, &[1, 2, 3]);
        asm.halt();
        let prog = asm.finish();
        let mem = prog.initial_memory();
        assert_eq!(mem.read(0x1000, 8), 1);
        assert_eq!(mem.read(0x1008, 8), 2);
        assert_eq!(mem.read(0x1010, 8), 3);
    }

    #[test]
    fn inst_at_rejects_unaligned_pc() {
        let mut asm = Assembler::new();
        asm.halt();
        let prog = asm.finish();
        assert!(prog.inst_at(1).is_none());
        assert!(prog.inst_at(0).is_some());
        assert!(prog.inst_at(4).is_none());
    }

    #[test]
    fn iter_yields_pcs() {
        let mut asm = Assembler::new();
        asm.li(Reg::int(0), 1);
        asm.halt();
        let prog = asm.finish();
        let pcs: Vec<u64> = prog.iter().map(|(pc, _)| pc).collect();
        assert_eq!(pcs, vec![0, 4]);
    }
}
