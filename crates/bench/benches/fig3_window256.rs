//! Regenerates **Figure 3**: the Figure-2 experiment on a
//! 256-instruction-window machine (all window resources doubled, branch
//! predictor quadrupled, bypassing predictor *not* enlarged), for the
//! paper's selected benchmarks.
//!
//! The paper's finding: a larger window increases both SMB opportunity
//! (perfect SMB improves) and hard communication patterns (realistic
//! NoSQ's average advantage drops from ~2% to ~1%).

use nosq_bench::{dyn_insts, parallel_over_profiles, rel_time, suite_geomeans, SuiteTable};
use nosq_core::{simulate, SimConfig};
use nosq_trace::Profile;

struct Row {
    profile: &'static Profile,
    rel: [f64; 4],
}

fn main() {
    let n = dyn_insts();
    let profiles = Profile::selected();
    let rows = parallel_over_profiles(&profiles, |p| {
        let program = nosq_bench::workload(p);
        let ideal = simulate(&program, SimConfig::baseline_perfect(n).with_window256());
        let sq = simulate(&program, SimConfig::baseline_storesets(n).with_window256());
        let nd = simulate(&program, SimConfig::nosq_no_delay(n).with_window256());
        let d = simulate(&program, SimConfig::nosq(n).with_window256());
        let smb = simulate(&program, SimConfig::perfect_smb(n).with_window256());
        Row {
            profile: p,
            rel: [
                rel_time(&sq, &ideal),
                rel_time(&nd, &ideal),
                rel_time(&d, &ideal),
                rel_time(&smb, &ideal),
            ],
        }
    });

    let mut table = SuiteTable::new(format!(
        "{:<9} | {:>8} {:>9} {:>9} {:>9}   (256-entry window; relative execution time)",
        "Figure 3", "assoc-sq", "nosq-nd", "nosq-d", "perfect"
    ));
    for r in &rows {
        table.row(
            r.profile.suite,
            format!(
                "{:<9} | {:>8.3} {:>9.3} {:>9.3} {:>9.3}",
                r.profile.name, r.rel[0], r.rel[1], r.rel[2], r.rel[3]
            ),
        );
    }
    let mut summaries = Vec::new();
    for (label, idx) in [
        ("assoc-sq", 0),
        ("nosq-nd", 1),
        ("nosq-d", 2),
        ("perfect", 3),
    ] {
        let values: Vec<_> = rows.iter().map(|r| (r.profile, r.rel[idx])).collect();
        for (suite, g) in suite_geomeans(&values) {
            summaries.push((
                suite,
                format!("{:<9} |   {label} gmean {g:>6.3}", format!("{suite}")),
            ));
        }
    }
    table.print(&summaries);
    println!("(measured at {n} dynamic instructions per configuration)");
}
