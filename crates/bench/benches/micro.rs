//! Criterion microbenchmarks for the hot structures: the bypassing
//! predictor, the T-SSBF, the cache model, the partial-word transform,
//! the tracer, and a small end-to-end simulation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use nosq_core::predictor::{BypassingPredictor, PathHistory, PredictorConfig};
use nosq_core::{bypass, simulate, SimConfig};
use nosq_isa::{Extension, MemWidth};
use nosq_trace::{synthesize, Profile, Tracer};
use nosq_uarch::{Cache, CacheConfig, Ssn, Tssbf};

fn bench_predictor(c: &mut Criterion) {
    let mut g = c.benchmark_group("predictor");
    g.bench_function("predict_hit", |b| {
        let mut p = BypassingPredictor::new(PredictorConfig::paper_default());
        let h = PathHistory::new();
        p.train_mispredict(0x400, &h, false, Some((3, 0)));
        b.iter(|| black_box(p.predict(black_box(0x400), &h)));
    });
    g.bench_function("predict_miss", |b| {
        let mut p = BypassingPredictor::new(PredictorConfig::paper_default());
        let h = PathHistory::new();
        b.iter(|| black_box(p.predict(black_box(0x999c), &h)));
    });
    g.bench_function("train_mispredict", |b| {
        let mut p = BypassingPredictor::new(PredictorConfig::paper_default());
        let h = PathHistory::new();
        let mut pc = 0u64;
        b.iter(|| {
            pc = pc.wrapping_add(4) & 0xffff;
            p.train_mispredict(pc, &h, true, Some((1, 0)));
        });
    });
    g.finish();
}

fn bench_tssbf(c: &mut Criterion) {
    let mut g = c.benchmark_group("tssbf");
    g.bench_function("record_store", |b| {
        let mut f = Tssbf::new(128, 4);
        let mut ssn = 0u64;
        b.iter(|| {
            ssn += 1;
            f.record_store(black_box(ssn * 8), 8, Ssn(ssn));
        });
    });
    g.bench_function("lookup", |b| {
        let mut f = Tssbf::new(128, 4);
        for i in 1..=64u64 {
            f.record_store(i * 8, 8, Ssn(i));
        }
        b.iter(|| black_box(f.lookup(black_box(32 * 8), 8)));
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/l1_hit", |b| {
        let mut cache = Cache::new(CacheConfig::paper_l1d());
        cache.access(0x1000);
        b.iter(|| black_box(cache.access(black_box(0x1000))));
    });
}

fn bench_bypass_value(c: &mut Criterion) {
    c.bench_function("bypass/partial_word_transform", |b| {
        b.iter(|| {
            black_box(bypass::bypass_value(
                black_box(0x1122_3344_5566_7788),
                MemWidth::B8,
                false,
                4,
                MemWidth::B2,
                Extension::Sign,
            ))
        });
    });
}

fn bench_tracer(c: &mut Criterion) {
    let profile = Profile::by_name("gzip").unwrap();
    let program = synthesize(profile, 42);
    c.bench_function("tracer/10k_insts", |b| {
        b.iter_batched(
            || Tracer::new(&program, 10_000),
            |t| black_box(t.count()),
            BatchSize::SmallInput,
        );
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let profile = Profile::by_name("gsm.e").unwrap();
    let program = synthesize(profile, 42);
    let mut g = c.benchmark_group("simulate_10k");
    g.sample_size(20);
    g.bench_function("nosq", |b| {
        b.iter(|| black_box(simulate(&program, SimConfig::nosq(10_000))));
    });
    g.bench_function("baseline", |b| {
        b.iter(|| black_box(simulate(&program, SimConfig::baseline_storesets(10_000))));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_predictor,
    bench_tssbf,
    bench_cache,
    bench_bypass_value,
    bench_tracer,
    bench_end_to_end
);
criterion_main!(benches);
