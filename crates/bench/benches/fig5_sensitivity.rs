//! Regenerates **Figure 5**: NoSQ's sensitivity to bypassing-predictor
//! capacity (512 / 1K / 2K / 4K / unbounded entries, top graph) and path
//! history length (4 / 6 / 8 / 10 / 12 bits, bottom graph), on the
//! paper's selected benchmarks.
//!
//! Values are execution time relative to the ideal baseline, so lower is
//! better; the paper finds the default 2K-entry/8-bit predictor within a
//! hair of unbounded size, with SPECint losing ~4% at 512 entries.
//!
//! The whole sweep is one `nosq-lab` campaign — 16 configurations ×
//! the selected profiles — sharded by the engine's lock-free executor;
//! this harness only formats the resulting matrix.

use nosq_bench::{dyn_insts, rel_time, suite_geomeans, SuiteTable};
use nosq_core::{PredictorConfig, SimConfig};
use nosq_lab::{run_campaign, Campaign, RunOptions};
use nosq_trace::Profile;

const CAPACITIES: [usize; 4] = [512, 1024, 2048, 4096];
const HISTORIES: [u32; 5] = [4, 6, 8, 10, 12];

struct Row {
    profile: &'static Profile,
    by_capacity: Vec<f64>,   // 512, 1k, 2k, 4k, inf
    by_history: Vec<f64>,    // 4, 6, 8, 10, 12 bits
    nd_by_history: Vec<f64>, // no-delay mis/10k per history setting
}

/// The Figure-5 grid as one campaign: the ideal baseline, the capacity
/// sweep, the history sweep, and the no-delay history sweep (the delay
/// mechanism masks history starvation in execution time — starved loads
/// park instead of squashing — so the underlying accuracy is reported
/// from the no-delay runs).
fn campaign(n: u64) -> Campaign {
    let nosq_with =
        |pred: PredictorConfig| SimConfig::nosq(n).into_builder().predictor(pred).build();
    let mut b = Campaign::builder("fig5_sensitivity")
        .selected_profiles()
        .max_insts(n)
        .baseline("ideal")
        .config("ideal", SimConfig::baseline_perfect(n));
    for c in CAPACITIES {
        b = b.config(
            format!("cap{c}"),
            nosq_with(PredictorConfig::with_capacity(c)),
        );
    }
    b = b.config("capInf", nosq_with(PredictorConfig::unbounded()));
    for h in HISTORIES {
        b = b.config(
            format!("hist{h}"),
            nosq_with(PredictorConfig::with_history_bits(h)),
        );
        b = b.config(
            format!("nd-hist{h}"),
            SimConfig::nosq_no_delay(n)
                .into_builder()
                .predictor(PredictorConfig::with_history_bits(h))
                .build(),
        );
    }
    b.build()
        .expect("the Figure-5 campaign is statically valid")
}

fn main() {
    let n = dyn_insts();
    let campaign = campaign(n);
    let result = run_campaign(&campaign, &RunOptions::default());

    let at = |name: &str| campaign.config_index(name).expect("config exists");
    let ideal = at("ideal");
    let rows: Vec<Row> = campaign
        .profiles
        .iter()
        .enumerate()
        .map(|(p, profile)| {
            let rel = |name: &str| rel_time(result.report(p, at(name)), result.report(p, ideal));
            let mut by_capacity: Vec<f64> =
                CAPACITIES.iter().map(|c| rel(&format!("cap{c}"))).collect();
            by_capacity.push(rel("capInf"));
            let by_history = HISTORIES.iter().map(|h| rel(&format!("hist{h}"))).collect();
            let nd_by_history = HISTORIES
                .iter()
                .map(|h| {
                    result
                        .report(p, at(&format!("nd-hist{h}")))
                        .mispredicts_per_10k_loads()
                })
                .collect();
            Row {
                profile,
                by_capacity,
                by_history,
                nd_by_history,
            }
        })
        .collect();

    let mut cap_table = SuiteTable::new(format!(
        "{:<9} | {:>7} {:>7} {:>7} {:>7} {:>7}   (capacity sweep; relative execution time)",
        "Fig 5 top", "512", "1K", "2K", "4K", "Inf"
    ));
    for r in &rows {
        cap_table.row(
            r.profile.suite,
            format!(
                "{:<9} | {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3}",
                r.profile.name,
                r.by_capacity[0],
                r.by_capacity[1],
                r.by_capacity[2],
                r.by_capacity[3],
                r.by_capacity[4]
            ),
        );
    }
    let mut cap_summaries = Vec::new();
    for (i, label) in ["512", "1K", "2K", "4K", "Inf"].iter().enumerate() {
        let values: Vec<_> = rows.iter().map(|r| (r.profile, r.by_capacity[i])).collect();
        for (suite, g) in suite_geomeans(&values) {
            cap_summaries.push((
                suite,
                format!("{:<9} |   {label:<3} gmean {g:>6.3}", format!("{suite}")),
            ));
        }
    }
    cap_table.print(&cap_summaries);

    let mut hist_table = SuiteTable::new(format!(
        "{:<9} | {:>7} {:>7} {:>7} {:>7} {:>7} | {:>6} {:>6} {:>6} {:>6} {:>6}   (time | no-delay mis/10k)",
        "Fig 5 bot", "4b", "6b", "8b", "10b", "12b", "4b", "6b", "8b", "10b", "12b"
    ));
    for r in &rows {
        hist_table.row(
            r.profile.suite,
            format!(
                "{:<9} | {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3} | {:>6.0} {:>6.0} {:>6.0} {:>6.0} {:>6.0}",
                r.profile.name,
                r.by_history[0],
                r.by_history[1],
                r.by_history[2],
                r.by_history[3],
                r.by_history[4],
                r.nd_by_history[0],
                r.nd_by_history[1],
                r.nd_by_history[2],
                r.nd_by_history[3],
                r.nd_by_history[4]
            ),
        );
    }
    let mut hist_summaries = Vec::new();
    for (i, label) in ["4b", "6b", "8b", "10b", "12b"].iter().enumerate() {
        let values: Vec<_> = rows.iter().map(|r| (r.profile, r.by_history[i])).collect();
        for (suite, g) in suite_geomeans(&values) {
            hist_summaries.push((
                suite,
                format!("{:<9} |   {label:<3} gmean {g:>6.3}", format!("{suite}")),
            ));
        }
    }
    hist_table.print(&hist_summaries);
    println!("(measured at {n} dynamic instructions per configuration)");
}
