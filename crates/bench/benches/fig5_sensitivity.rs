//! Regenerates **Figure 5**: NoSQ's sensitivity to bypassing-predictor
//! capacity (512 / 1K / 2K / 4K / unbounded entries, top graph) and path
//! history length (4 / 6 / 8 / 10 / 12 bits, bottom graph), on the
//! paper's selected benchmarks.
//!
//! Values are execution time relative to the ideal baseline, so lower is
//! better; the paper finds the default 2K-entry/8-bit predictor within a
//! hair of unbounded size, with SPECint losing ~4% at 512 entries.

use nosq_bench::{dyn_insts, parallel_over_profiles, rel_time, suite_geomeans, SuiteTable};
use nosq_core::{simulate, PredictorConfig, SimConfig};
use nosq_trace::Profile;

const CAPACITIES: [usize; 4] = [512, 1024, 2048, 4096];
const HISTORIES: [u32; 5] = [4, 6, 8, 10, 12];

struct Row {
    profile: &'static Profile,
    by_capacity: Vec<f64>,   // 512, 1k, 2k, 4k, inf
    by_history: Vec<f64>,    // 4, 6, 8, 10, 12 bits
    nd_by_history: Vec<f64>, // no-delay mis/10k per history setting
}

fn main() {
    let n = dyn_insts();
    let profiles = Profile::selected();
    let rows = parallel_over_profiles(&profiles, |p| {
        let program = nosq_bench::workload(p);
        let ideal = simulate(&program, SimConfig::baseline_perfect(n));
        let run_with = |pred: PredictorConfig| {
            let cfg = SimConfig::nosq(n).into_builder().predictor(pred).build();
            rel_time(&simulate(&program, cfg), &ideal)
        };
        let mut by_capacity: Vec<f64> = CAPACITIES
            .iter()
            .map(|&c| run_with(PredictorConfig::with_capacity(c)))
            .collect();
        by_capacity.push(run_with(PredictorConfig::unbounded()));
        let by_history = HISTORIES
            .iter()
            .map(|&h| run_with(PredictorConfig::with_history_bits(h)))
            .collect();
        // The delay mechanism masks history starvation in execution time
        // (starved loads park instead of squashing), so also report the
        // underlying no-delay accuracy, where the sensitivity is visible.
        let nd_by_history = HISTORIES
            .iter()
            .map(|&h| {
                let cfg = SimConfig::nosq_no_delay(n)
                    .into_builder()
                    .predictor(PredictorConfig::with_history_bits(h))
                    .build();
                simulate(&program, cfg).mispredicts_per_10k_loads()
            })
            .collect();
        Row {
            profile: p,
            by_capacity,
            by_history,
            nd_by_history,
        }
    });

    let mut cap_table = SuiteTable::new(format!(
        "{:<9} | {:>7} {:>7} {:>7} {:>7} {:>7}   (capacity sweep; relative execution time)",
        "Fig 5 top", "512", "1K", "2K", "4K", "Inf"
    ));
    for r in &rows {
        cap_table.row(
            r.profile.suite,
            format!(
                "{:<9} | {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3}",
                r.profile.name,
                r.by_capacity[0],
                r.by_capacity[1],
                r.by_capacity[2],
                r.by_capacity[3],
                r.by_capacity[4]
            ),
        );
    }
    let mut cap_summaries = Vec::new();
    for (i, label) in ["512", "1K", "2K", "4K", "Inf"].iter().enumerate() {
        let values: Vec<_> = rows.iter().map(|r| (r.profile, r.by_capacity[i])).collect();
        for (suite, g) in suite_geomeans(&values) {
            cap_summaries.push((
                suite,
                format!("{:<9} |   {label:<3} gmean {g:>6.3}", format!("{suite}")),
            ));
        }
    }
    cap_table.print(&cap_summaries);

    let mut hist_table = SuiteTable::new(format!(
        "{:<9} | {:>7} {:>7} {:>7} {:>7} {:>7} | {:>6} {:>6} {:>6} {:>6} {:>6}   (time | no-delay mis/10k)",
        "Fig 5 bot", "4b", "6b", "8b", "10b", "12b", "4b", "6b", "8b", "10b", "12b"
    ));
    for r in &rows {
        hist_table.row(
            r.profile.suite,
            format!(
                "{:<9} | {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3} | {:>6.0} {:>6.0} {:>6.0} {:>6.0} {:>6.0}",
                r.profile.name,
                r.by_history[0],
                r.by_history[1],
                r.by_history[2],
                r.by_history[3],
                r.by_history[4],
                r.nd_by_history[0],
                r.nd_by_history[1],
                r.nd_by_history[2],
                r.nd_by_history[3],
                r.nd_by_history[4]
            ),
        );
    }
    let mut hist_summaries = Vec::new();
    for (i, label) in ["4b", "6b", "8b", "10b", "12b"].iter().enumerate() {
        let values: Vec<_> = rows.iter().map(|r| (r.profile, r.by_history[i])).collect();
        for (suite, g) in suite_geomeans(&values) {
            hist_summaries.push((
                suite,
                format!("{:<9} |   {label:<3} gmean {g:>6.3}", format!("{suite}")),
            ));
        }
    }
    hist_table.print(&hist_summaries);
    println!("(measured at {n} dynamic instructions per configuration)");
}
