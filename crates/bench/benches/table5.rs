//! Regenerates **Table 5**: store-load communication behaviour and
//! bypassing-prediction accuracy for all 47 benchmarks.
//!
//! Left half (communication): measured from the workload trace with a
//! 128-instruction window. Right half (mis-predictions per 10k loads, no
//! delay vs delay, and % loads delayed): measured by simulating the NoSQ
//! configurations. The paper's numbers are printed alongside.

use nosq_bench::{
    all_profiles, dyn_insts, json_escape, parallel_over_profiles, workload, write_artifact,
    SuiteTable,
};
use nosq_core::{simulate, SimConfig, SimReport};
use nosq_trace::analyze_program;

struct Row {
    profile: &'static nosq_trace::Profile,
    comm: f64,
    partial: f64,
    nd: f64,
    d: f64,
    delayed: f64,
    nd_report: SimReport,
    d_report: SimReport,
}

/// `NOSQ_ARTIFACT_DIR` artifact: the full NoSQ reports (with and
/// without delay) per benchmark, serialized through
/// [`SimReport::to_json`].
fn write_json(rows: &[Row]) {
    let mut json = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"benchmark\":\"{}\",\"suite\":\"{}\",\"comm_pct\":{:.4},\"partial_pct\":{:.4},\
             \"nosq_no_delay\":{},\"nosq_delay\":{}}}",
            json_escape(r.profile.name),
            r.profile.suite,
            r.comm,
            r.partial,
            r.nd_report.to_json(),
            r.d_report.to_json(),
        ));
    }
    json.push(']');
    write_artifact("table5.json", &json);
}

fn main() {
    let n = dyn_insts();
    let profiles = all_profiles();
    let rows: Vec<Row> = parallel_over_profiles(&profiles, |p| {
        let program = workload(p);
        let comm = analyze_program(&program, n, 128);
        let nd = simulate(&program, SimConfig::nosq_no_delay(n));
        let d = simulate(&program, SimConfig::nosq(n));
        Row {
            profile: p,
            comm: comm.comm_pct(),
            partial: comm.partial_pct(),
            nd: nd.mispredicts_per_10k_loads(),
            d: d.mispredicts_per_10k_loads(),
            delayed: d.delayed_pct(),
            nd_report: nd,
            d_report: d,
        }
    });

    let mut table = SuiteTable::new(format!(
        "{:<9} | {:>6} {:>6} | {:>6} {:>6} | {:>7} {:>7} | {:>7} {:>7} | {:>6} {:>6}",
        "Table 5",
        "comm%",
        "paper",
        "part%",
        "paper",
        "mis-nd",
        "paper",
        "mis-d",
        "paper",
        "del%",
        "paper"
    ));
    for r in &rows {
        let p = r.profile;
        table.row(
            p.suite,
            format!(
                "{:<9} | {:>6.1} {:>6.1} | {:>6.1} {:>6.1} | {:>7.1} {:>7.1} | {:>7.1} {:>7.1} | {:>6.1} {:>6.1}",
                p.name,
                r.comm,
                p.comm_pct,
                r.partial,
                p.partial_pct,
                r.nd,
                p.mispred_no_delay,
                r.d,
                p.mispred_delay,
                r.delayed,
                p.delayed_pct
            ),
        );
    }
    let summaries: Vec<_> = nosq_trace::Suite::all()
        .into_iter()
    .map(|suite| {
        let in_suite: Vec<&Row> = rows.iter().filter(|r| r.profile.suite == suite).collect();
        let mean = |f: &dyn Fn(&Row) -> f64| {
            in_suite.iter().map(|r| f(r)).sum::<f64>() / in_suite.len() as f64
        };
        (
            suite,
            format!(
                "{:<9} | {:>6.1} {:>6} | {:>6.1} {:>6} | {:>7.1} {:>7} | {:>7.1} {:>7} | {:>6.1} {:>6}",
                format!("{suite}.avg"),
                mean(&|r| r.comm),
                "",
                mean(&|r| r.partial),
                "",
                mean(&|r| r.nd),
                "",
                mean(&|r| r.d),
                "",
                mean(&|r| r.delayed),
                ""
            ),
        )
    })
    .collect();
    table.print(&summaries);
    write_json(&rows);
    println!("(measured at {n} dynamic instructions per run; paper columns from Table 5)");
}
