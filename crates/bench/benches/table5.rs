//! Regenerates **Table 5**: store-load communication behaviour and
//! bypassing-prediction accuracy for all 47 benchmarks.
//!
//! Left half (communication): measured from the workload trace with a
//! 128-instruction window. Right half (mis-predictions per 10k loads, no
//! delay vs delay, and % loads delayed): measured by simulating the NoSQ
//! configurations. The paper's numbers are printed alongside.
//!
//! The sweep itself runs through the `nosq-lab` campaign engine (the
//! same grid the `nosq table5` CLI command runs); this harness only
//! formats the rows next to the paper's columns.

use nosq_bench::{dyn_insts, write_artifact, SuiteTable};
use nosq_lab::reports::{table5, table5_json};
use nosq_lab::RunOptions;

fn main() {
    let n = dyn_insts();
    let (rows, _result) = table5(n, &RunOptions::default())
        .unwrap_or_else(|e| panic!("invalid NOSQ_DYN_INSTS budget {n}: {e}"));

    let mut table = SuiteTable::new(format!(
        "{:<9} | {:>6} {:>6} | {:>6} {:>6} | {:>7} {:>7} | {:>7} {:>7} | {:>6} {:>6}",
        "Table 5",
        "comm%",
        "paper",
        "part%",
        "paper",
        "mis-nd",
        "paper",
        "mis-d",
        "paper",
        "del%",
        "paper"
    ));
    for r in &rows {
        let p = r.profile;
        table.row(
            p.suite,
            format!(
                "{:<9} | {:>6.1} {:>6.1} | {:>6.1} {:>6.1} | {:>7.1} {:>7.1} | {:>7.1} {:>7.1} | {:>6.1} {:>6.1}",
                p.name,
                r.comm_pct,
                p.comm_pct,
                r.partial_pct,
                p.partial_pct,
                r.no_delay.mispredicts_per_10k_loads(),
                p.mispred_no_delay,
                r.delay.mispredicts_per_10k_loads(),
                p.mispred_delay,
                r.delay.delayed_pct(),
                p.delayed_pct
            ),
        );
    }
    let summaries: Vec<_> = nosq_trace::Suite::all()
        .into_iter()
        .map(|suite| {
            let in_suite: Vec<_> = rows.iter().filter(|r| r.profile.suite == suite).collect();
            let mean = |f: &dyn Fn(&nosq_lab::reports::Table5Row) -> f64| {
                in_suite.iter().map(|r| f(r)).sum::<f64>() / in_suite.len() as f64
            };
            (
                suite,
                format!(
                    "{:<9} | {:>6.1} {:>6} | {:>6.1} {:>6} | {:>7.1} {:>7} | {:>7.1} {:>7} | {:>6.1} {:>6}",
                    format!("{suite}.avg"),
                    mean(&|r| r.comm_pct),
                    "",
                    mean(&|r| r.partial_pct),
                    "",
                    mean(&|r| r.no_delay.mispredicts_per_10k_loads()),
                    "",
                    mean(&|r| r.delay.mispredicts_per_10k_loads()),
                    "",
                    mean(&|r| r.delay.delayed_pct()),
                    ""
                ),
            )
        })
        .collect();
    table.print(&summaries);
    write_artifact("table5.json", &table5_json(&rows));
    println!("(measured at {n} dynamic instructions per run; paper columns from Table 5)");
}
