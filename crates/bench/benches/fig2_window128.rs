//! Regenerates **Figure 2**: execution time of four configurations
//! relative to a conventional processor with an associative store queue
//! and perfect load scheduling, on the 128-instruction-window machine.
//!
//! Bars per benchmark: (i) associative SQ + StoreSets scheduling,
//! (ii) NoSQ without delay, (iii) NoSQ with delay, (iv) perfect SMB.

use nosq_bench::{
    all_profiles, dyn_insts, parallel_over_profiles, rel_time, suite_geomeans, write_artifact,
    SuiteTable,
};
use nosq_core::ser::{JsonArray, JsonObject};
use nosq_core::{simulate, SimConfig, SimReport};
use nosq_trace::Profile;

const CONFIG_NAMES: [&str; 4] = ["assoc-sq", "nosq-nd", "nosq-d", "perfect"];

struct Row {
    profile: &'static Profile,
    ideal_ipc: f64,
    rel: [f64; 4],
    reports: [SimReport; 4],
}

fn run_all(p: &'static Profile, n: u64) -> Row {
    let program = nosq_bench::workload(p);
    let ideal = simulate(&program, SimConfig::baseline_perfect(n));
    let sq = simulate(&program, SimConfig::baseline_storesets(n));
    let nd = simulate(&program, SimConfig::nosq_no_delay(n));
    let d = simulate(&program, SimConfig::nosq(n));
    let smb = simulate(&program, SimConfig::perfect_smb(n));
    Row {
        profile: p,
        ideal_ipc: ideal.ipc(),
        rel: [
            rel_time(&sq, &ideal),
            rel_time(&nd, &ideal),
            rel_time(&d, &ideal),
            rel_time(&smb, &ideal),
        ],
        reports: [sq, nd, d, smb],
    }
}

/// `NOSQ_ARTIFACT_DIR` artifacts: one JSON document with the full
/// per-configuration reports, and one CSV with a row per
/// (benchmark, configuration) pair.
fn write_artifacts(rows: &[Row]) {
    let mut json = JsonArray::new();
    let mut csv = format!("benchmark,config,{}\n", SimReport::csv_header());
    for r in rows {
        let mut obj = JsonObject::new();
        obj.field_str("benchmark", r.profile.name)
            .field_str("suite", &r.profile.suite.to_string());
        for (name, report) in CONFIG_NAMES.iter().zip(&r.reports) {
            obj.field_raw(name, &report.to_json());
            csv.push_str(&format!(
                "{},{},{}\n",
                r.profile.name,
                name,
                report.to_csv_row()
            ));
        }
        json.push_raw(&obj.finish());
    }
    write_artifact("fig2_window128.json", &json.finish());
    write_artifact("fig2_window128.csv", &csv);
}

fn main() {
    let n = dyn_insts();
    let profiles = all_profiles();
    let rows = parallel_over_profiles(&profiles, |p| run_all(p, n));

    let mut table = SuiteTable::new(format!(
        "{:<9} | {:>5} {:>5} | {:>8} {:>9} {:>9} {:>9}   (relative execution time; <1 is faster than ideal baseline)",
        "Figure 2", "ipc", "paper", "assoc-sq", "nosq-nd", "nosq-d", "perfect"
    ));
    for r in &rows {
        table.row(
            r.profile.suite,
            format!(
                "{:<9} | {:>5.2} {:>5.2} | {:>8.3} {:>9.3} {:>9.3} {:>9.3}",
                r.profile.name,
                r.ideal_ipc,
                r.profile.baseline_ipc,
                r.rel[0],
                r.rel[1],
                r.rel[2],
                r.rel[3]
            ),
        );
    }
    let mut summaries = Vec::new();
    for (idx, label) in CONFIG_NAMES.iter().enumerate() {
        let values: Vec<_> = rows.iter().map(|r| (r.profile, r.rel[idx])).collect();
        for (suite, g) in suite_geomeans(&values) {
            summaries.push((
                suite,
                format!(
                    "{:<9} |             {label} gmean {g:>6.3}",
                    format!("{suite}")
                ),
            ));
        }
    }
    summaries.sort_by_key(|(s, _)| format!("{s}"));
    table.print(&summaries);
    write_artifacts(&rows);
    println!("(paper: NoSQ-with-delay outperforms the conventional design by ~2% on average;");
    println!(" perfect SMB by ~3.7%; NoSQ-no-delay shows slowdowns on mis-prediction-heavy runs)");
    println!("(measured at {n} dynamic instructions per configuration)");
}
