//! Regenerates **Figure 2**: execution time of four configurations
//! relative to a conventional processor with an associative store queue
//! and perfect load scheduling, on the 128-instruction-window machine.
//!
//! Bars per benchmark: (i) associative SQ + StoreSets scheduling,
//! (ii) NoSQ without delay, (iii) NoSQ with delay, (iv) perfect SMB.

use nosq_bench::{all_profiles, dyn_insts, parallel_over_profiles, suite_geomeans, SuiteTable};
use nosq_core::{simulate, SimConfig, SimResult};
use nosq_trace::Profile;

struct Row {
    profile: &'static Profile,
    ideal_ipc: f64,
    rel: [f64; 4],
}

fn run_all(p: &'static Profile, n: u64) -> Row {
    let program = nosq_bench::workload(p);
    let ideal = simulate(&program, SimConfig::baseline_perfect(n));
    let rel = |r: &SimResult| r.relative_time(&ideal);
    let sq = simulate(&program, SimConfig::baseline_storesets(n));
    let nd = simulate(&program, SimConfig::nosq_no_delay(n));
    let d = simulate(&program, SimConfig::nosq(n));
    let smb = simulate(&program, SimConfig::perfect_smb(n));
    Row {
        profile: p,
        ideal_ipc: ideal.ipc(),
        rel: [rel(&sq), rel(&nd), rel(&d), rel(&smb)],
    }
}

fn main() {
    let n = dyn_insts();
    let profiles = all_profiles();
    let rows = parallel_over_profiles(&profiles, |p| run_all(p, n));

    let mut table = SuiteTable::new(format!(
        "{:<9} | {:>5} {:>5} | {:>8} {:>9} {:>9} {:>9}   (relative execution time; <1 is faster than ideal baseline)",
        "Figure 2", "ipc", "paper", "assoc-sq", "nosq-nd", "nosq-d", "perfect"
    ));
    for r in &rows {
        table.row(
            r.profile.suite,
            format!(
                "{:<9} | {:>5.2} {:>5.2} | {:>8.3} {:>9.3} {:>9.3} {:>9.3}",
                r.profile.name,
                r.ideal_ipc,
                r.profile.baseline_ipc,
                r.rel[0],
                r.rel[1],
                r.rel[2],
                r.rel[3]
            ),
        );
    }
    let mut summaries = Vec::new();
    for (label, idx) in [
        ("assoc-sq", 0),
        ("nosq-nd", 1),
        ("nosq-d", 2),
        ("perfect", 3),
    ] {
        let values: Vec<_> = rows.iter().map(|r| (r.profile, r.rel[idx])).collect();
        for (suite, g) in suite_geomeans(&values) {
            summaries.push((
                suite,
                format!(
                    "{:<9} |             {label} gmean {g:>6.3}",
                    format!("{suite}")
                ),
            ));
        }
    }
    summaries.sort_by_key(|(s, _)| format!("{s}"));
    table.print(&summaries);
    println!("(paper: NoSQ-with-delay outperforms the conventional design by ~2% on average;");
    println!(" perfect SMB by ~3.7%; NoSQ-no-delay shows slowdowns on mis-prediction-heavy runs)");
    println!("(measured at {n} dynamic instructions per configuration)");
}
