//! Ablation for paper §3.1: distance-based vs store-PC-based dependence
//! representation.
//!
//! A store-PC scheme (StoreSets-style: each store PC maps to its *most
//! recent* dynamic instance) cannot represent a load that depends on an
//! older instance of the same static store — the paper's
//! `X[i] = A*X[i-2]` example. A distance-based scheme represents it
//! trivially. This harness replays ground-truth dependences from the
//! trace and scores both idealized predictors on exactly that
//! representational question (prediction = which dynamic store feeds the
//! load; both predictors are given oracle training).

use nosq_bench::dyn_insts;
use nosq_isa::InstClass;
use nosq_trace::kernels::{Kernel, SpillKernel, StridedKernel};
use nosq_trace::Tracer;
use std::collections::HashMap;

/// Scores both schemes on one kernel: fraction of in-window
/// communicating loads whose producing dynamic store is correctly
/// identified at rename time.
fn score(kernel: &dyn Kernel, budget: u64) -> (f64, f64, u64) {
    let program = kernel_driver(kernel);
    let mut dist_table: HashMap<u64, u64> = HashMap::new(); // load pc -> distance
    let mut last_instance: HashMap<u64, u64> = HashMap::new(); // store pc -> ssn
    let mut dep_store_pc: HashMap<u64, u64> = HashMap::new(); // load pc -> store pc
    let mut store_pc_by_ssn: HashMap<u64, u64> = HashMap::new();

    let (mut comm, mut dist_ok, mut pc_ok) = (0u64, 0u64, 0u64);
    for d in Tracer::new(&program, budget) {
        match d.class {
            InstClass::Store => {
                let ssn = d.stores_before + 1;
                last_instance.insert(d.rec.pc, ssn);
                store_pc_by_ssn.insert(ssn, d.rec.pc);
            }
            InstClass::Load => {
                if let Some(dep) = d.mem_dep {
                    if dep.inst_distance >= 128 {
                        continue;
                    }
                    comm += 1;
                    let actual_ssn = d.stores_before - dep.store_distance;
                    // Distance scheme: predict SSNrename - learned distance.
                    if let Some(dist) = dist_table.get(&d.rec.pc) {
                        if d.stores_before.saturating_sub(*dist) == actual_ssn {
                            dist_ok += 1;
                        }
                    }
                    // Store-PC scheme: predict the most recent instance of
                    // the learned static store.
                    if let Some(spc) = dep_store_pc.get(&d.rec.pc) {
                        if last_instance.get(spc) == Some(&actual_ssn) {
                            pc_ok += 1;
                        }
                    }
                    // Oracle training for both.
                    dist_table.insert(d.rec.pc, dep.store_distance);
                    if let Some(spc) = store_pc_by_ssn.get(&actual_ssn) {
                        dep_store_pc.insert(d.rec.pc, *spc);
                    }
                }
            }
            _ => {}
        }
    }
    (
        100.0 * dist_ok as f64 / comm.max(1) as f64,
        100.0 * pc_ok as f64 / comm.max(1) as f64,
        comm,
    )
}

fn kernel_driver(kernel: &dyn Kernel) -> nosq_isa::Program {
    use nosq_isa::{Assembler, Reg};
    use nosq_trace::kernels::{emit_function, fscratch_regs, scratch_regs, EmitCtx, RegPool};
    use rand::SeedableRng;
    let mut asm = Assembler::new();
    let mut pool = RegPool::new();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
    let mut persistent = pool.alloc_int(kernel.persistent_int());
    persistent.extend(pool.alloc_float(kernel.persistent_float()));
    let main = asm.label();
    asm.jump(main);
    let mut cx = EmitCtx {
        asm: &mut asm,
        persistent,
        scratch: scratch_regs(),
        fscratch: fscratch_regs(),
        base: 0x10_0000,
        rng: &mut rng,
    };
    let func = emit_function(kernel, &mut cx);
    let persistent = cx.persistent.clone();
    asm.bind(main);
    let mut cx = EmitCtx {
        asm: &mut asm,
        persistent,
        scratch: scratch_regs(),
        fscratch: fscratch_regs(),
        base: 0x10_0000,
        rng: &mut rng,
    };
    kernel.emit_init(&mut cx);
    let top = asm.label();
    asm.bind(top);
    asm.call(func);
    asm.jump(top);
    let _ = Reg::ZERO;
    asm.finish()
}

fn main() {
    let n = dyn_insts().min(200_000);
    println!("Ablation (paper 3.1): which dynamic store feeds each communicating load?");
    println!();
    println!(
        "{:<34} | {:>10} | {:>10} | {:>8}",
        "workload", "distance%", "store-PC%", "loads"
    );
    println!("{}", "-".repeat(72));
    for (name, kernel) in [
        (
            "spill/fill (most-recent deps)",
            Box::new(SpillKernel { slots: 8 }) as Box<dyn Kernel>,
        ),
        // steps: 1 keeps the recurrence *rolled*: every dynamic instance
        // comes from the same static store, as in the paper's loop body.
        (
            "X[i] = A*X[i-2] (older instance)",
            Box::new(StridedKernel {
                k: 2,
                elems: 64,
                float: false,
                steps: 1,
            }),
        ),
        (
            "X[i] = A*X[i-6] (older instance)",
            Box::new(StridedKernel {
                k: 6,
                elems: 64,
                float: false,
                steps: 1,
            }),
        ),
    ] {
        let (dist, pc, comm) = score(kernel.as_ref(), n);
        println!("{name:<34} | {dist:>9.1}% | {pc:>9.1}% | {comm:>8}");
    }
    println!();
    println!("Both schemes handle most-recent-instance dependences; only the");
    println!("distance scheme can name an *older* dynamic instance of the same");
    println!("static store (the store-PC scheme always predicts the newest one).");
}
