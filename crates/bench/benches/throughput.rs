//! Measured simulation throughput: simulated MIPS (millions of dynamic
//! instructions per wall-clock second) for representative profiles
//! across all five pipeline configurations, plus tracer-only
//! throughput, written to `BENCH_throughput.json` at the repo root.
//!
//! This is the workspace's performance trajectory anchor: every hot-path
//! change should move these numbers, and nothing else in the evaluation
//! pipeline measures wall-clock at all (artifact bytes are deterministic
//! by design; throughput is the one thing that is allowed to vary).
//!
//! Budget per point comes from `NOSQ_DYN_INSTS` (default 150k).

use std::time::Instant;

use nosq_bench::{dyn_insts, workload};
use nosq_core::ser::{json_f64, JsonArray, JsonObject};
use nosq_core::SimConfig;
use nosq_trace::{Profile, TraceBuffer, Tracer};

/// The representative profile set: both SPEC suites and MediaBench.
const PROFILES: [&str; 4] = ["gzip", "gcc", "applu", "gsm.e"];

/// The five pipeline configurations of the paper's evaluation.
fn configs(n: u64) -> Vec<(&'static str, SimConfig)> {
    vec![
        ("assoc-sq", SimConfig::baseline_perfect(n)),
        ("baseline-storesets", SimConfig::baseline_storesets(n)),
        ("nosq-no-delay", SimConfig::nosq_no_delay(n)),
        ("nosq", SimConfig::nosq(n)),
        ("perfect-smb", SimConfig::perfect_smb(n)),
    ]
}

struct Point {
    profile: &'static str,
    config: &'static str,
    insts: u64,
    cycles: u64,
    wall_secs: f64,
    mips: f64,
}

fn main() {
    let n = dyn_insts();
    let mut points = Vec::new();
    let mut tracer_points = Vec::new();
    let mut arena = nosq_core::SimArena::new();

    println!(
        "{:<9} {:<20} {:>10} {:>10} {:>9} {:>8}",
        "profile", "config", "insts", "cycles", "wall(ms)", "MIPS"
    );
    for name in PROFILES {
        let profile = Profile::by_name(name).expect("profile exists");
        let program = workload(profile);

        // Tracer throughput: the streaming functional front of the
        // datapath (execution + dependence analysis, no buffering).
        let started = Instant::now();
        let traced = Tracer::with_arena(&program, n, &mut arena.trace).count() as u64;
        let secs = started.elapsed().as_secs_f64();
        let mips = traced as f64 / secs / 1.0e6;
        println!(
            "{:<9} {:<20} {:>10} {:>10} {:>9.1} {:>8.2}",
            name,
            "tracer-only",
            traced,
            "-",
            secs * 1e3,
            mips
        );
        tracer_points.push((name, traced, secs, mips));

        // Pipeline throughput per configuration: one shared recorded
        // trace (untimed prep — its cost is the tracer point above
        // plus buffering, amortized across the sweep), arena recycled
        // across runs exactly like a lab worker.
        let trace = TraceBuffer::record_with_arena(&program, n, &mut arena.trace);
        for (cname, cfg) in configs(n) {
            let started = Instant::now();
            let report =
                nosq_core::Simulator::replay_with_arena(&program, cfg, &trace, &mut arena).run();
            let secs = started.elapsed().as_secs_f64();
            let mips = report.insts as f64 / secs / 1.0e6;
            println!(
                "{:<9} {:<20} {:>10} {:>10} {:>9.1} {:>8.2}",
                name,
                cname,
                report.insts,
                report.cycles,
                secs * 1e3,
                mips
            );
            points.push(Point {
                profile: name,
                config: cname,
                insts: report.insts,
                cycles: report.cycles,
                wall_secs: secs,
                mips,
            });
        }
    }

    let json = throughput_json(n, &points, &tracer_points);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    std::fs::write(path, &json).expect("write BENCH_throughput.json");
    println!("(wrote {path})");

    let agg_insts: u64 = points.iter().map(|p| p.insts).sum();
    let agg_secs: f64 = points.iter().map(|p| p.wall_secs).sum();
    println!(
        "aggregate pipeline throughput: {:.2} MIPS over {} points",
        agg_insts as f64 / agg_secs / 1.0e6,
        points.len()
    );
}

fn throughput_json(n: u64, points: &[Point], tracer: &[(&str, u64, f64, f64)]) -> String {
    let mut obj = JsonObject::new();
    obj.field_u64("dyn_insts_budget", n);

    let mut tr = JsonArray::new();
    for (name, insts, secs, mips) in tracer {
        let mut o = JsonObject::new();
        o.field_str("profile", name)
            .field_u64("insts", *insts)
            .field_raw("wall_secs", &json_f64(*secs))
            .field_raw("mips", &json_f64(*mips));
        tr.push_raw(&o.finish());
    }
    obj.field_raw("tracer", &tr.finish());

    let mut arr = JsonArray::new();
    for p in points {
        let mut o = JsonObject::new();
        o.field_str("profile", p.profile)
            .field_str("config", p.config)
            .field_u64("insts", p.insts)
            .field_u64("cycles", p.cycles)
            .field_raw("wall_secs", &json_f64(p.wall_secs))
            .field_raw("mips", &json_f64(p.mips));
        arr.push_raw(&o.finish());
    }
    obj.field_raw("pipeline", &arr.finish());

    let agg_insts: u64 = points.iter().map(|p| p.insts).sum();
    let agg_secs: f64 = points.iter().map(|p| p.wall_secs).sum();
    let tr_insts: u64 = tracer.iter().map(|t| t.1).sum();
    let tr_secs: f64 = tracer.iter().map(|t| t.2).sum();
    obj.field_raw(
        "aggregate_pipeline_mips",
        &json_f64(agg_insts as f64 / agg_secs / 1.0e6),
    );
    obj.field_raw(
        "aggregate_tracer_mips",
        &json_f64(tr_insts as f64 / tr_secs / 1.0e6),
    );
    obj.finish()
}
