//! Measured simulation throughput: simulated MIPS (millions of dynamic
//! instructions per wall-clock second) for representative profiles
//! across all five pipeline configurations, plus tracer-only
//! throughput, written to `BENCH_throughput.json` at the repo root.
//!
//! This is the workspace's performance trajectory anchor: every hot-path
//! change should move these numbers, and nothing else in the evaluation
//! pipeline measures wall-clock at all (artifact bytes are deterministic
//! by design; throughput is the one thing that is allowed to vary).
//!
//! Budget per point comes from `NOSQ_DYN_INSTS` (default 150k).

use std::time::Instant;

use nosq_bench::{dyn_insts, workload};
use nosq_core::ser::{json_f64, JsonArray, JsonObject};
use nosq_core::{sampled_replay_with_arena, LaneSet, SamplePlan, SimConfig};
use nosq_trace::{Profile, TraceBuffer, Tracer};

/// The representative profile set: both SPEC suites and MediaBench.
const PROFILES: [&str; 4] = ["gzip", "gcc", "applu", "gsm.e"];

/// The five pipeline configurations of the paper's evaluation.
fn configs(n: u64) -> Vec<(&'static str, SimConfig)> {
    vec![
        ("assoc-sq", SimConfig::baseline_perfect(n)),
        ("baseline-storesets", SimConfig::baseline_storesets(n)),
        ("nosq-no-delay", SimConfig::nosq_no_delay(n)),
        ("nosq", SimConfig::nosq(n)),
        ("perfect-smb", SimConfig::perfect_smb(n)),
    ]
}

struct Point {
    profile: &'static str,
    config: &'static str,
    insts: u64,
    cycles: u64,
    wall_secs: f64,
    mips: f64,
}

/// One profile's fused lockstep sweep: every configuration in a single
/// shared trace pass. `insts` sums over all lanes, so `mips` is the
/// aggregate simulation rate of the fused pass — directly comparable
/// to summing the profile's solo points.
struct FusedRow {
    profile: &'static str,
    insts: u64,
    cycles: u64,
    wall_secs: f64,
    mips: f64,
}

/// One profile's sampled estimate vs its full `nosq` run.
/// `effective_mips` is instructions *covered* (trace total) per
/// wall-second — the throughput a user experiences when accepting the
/// estimator's error bar instead of simulating every instruction.
struct SampledRow {
    profile: &'static str,
    windows: u64,
    measured_insts: u64,
    total_insts: u64,
    wall_secs: f64,
    effective_mips: f64,
    est_ipc: f64,
    full_ipc: f64,
    ipc_err_pct: f64,
}

fn main() {
    let n = dyn_insts();
    let mut points = Vec::new();
    let mut tracer_points = Vec::new();
    let mut fused_rows = Vec::new();
    let mut sampled_rows = Vec::new();
    let mut arena = nosq_core::SimArena::new();

    println!(
        "{:<9} {:<20} {:>10} {:>10} {:>9} {:>8}",
        "profile", "config", "insts", "cycles", "wall(ms)", "MIPS"
    );
    for name in PROFILES {
        let profile = Profile::by_name(name).expect("profile exists");
        let program = workload(profile);

        // Tracer throughput: the streaming functional front of the
        // datapath (execution + dependence analysis, no buffering).
        let started = Instant::now();
        let traced = Tracer::with_arena(&program, n, &mut arena.trace).count() as u64;
        let secs = started.elapsed().as_secs_f64();
        let mips = traced as f64 / secs / 1.0e6;
        println!(
            "{:<9} {:<20} {:>10} {:>10} {:>9.1} {:>8.2}",
            name,
            "tracer-only",
            traced,
            "-",
            secs * 1e3,
            mips
        );
        tracer_points.push((name, traced, secs, mips));

        // Pipeline throughput per configuration: one shared recorded
        // trace (untimed prep — its cost is the tracer point above
        // plus buffering, amortized across the sweep), arena recycled
        // across runs exactly like a lab worker.
        let trace = TraceBuffer::record_with_arena(&program, n, &mut arena.trace);
        let mut solo_reports = Vec::new();
        for (cname, cfg) in configs(n) {
            let started = Instant::now();
            let report =
                nosq_core::Simulator::replay_with_arena(&program, cfg, &trace, &mut arena).run();
            let secs = started.elapsed().as_secs_f64();
            let mips = report.insts as f64 / secs / 1.0e6;
            println!(
                "{:<9} {:<20} {:>10} {:>10} {:>9.1} {:>8.2}",
                name,
                cname,
                report.insts,
                report.cycles,
                secs * 1e3,
                mips
            );
            points.push(Point {
                profile: name,
                config: cname,
                insts: report.insts,
                cycles: report.cycles,
                wall_secs: secs,
                mips,
            });
            solo_reports.push(report);
        }

        // Fused lockstep sweep: all five configurations over one
        // shared trace pass. Reports must match the solo runs byte
        // for byte — a fused number that came from different results
        // would be meaningless.
        let cfgs: Vec<SimConfig> = configs(n).into_iter().map(|(_, c)| c).collect();
        let started = Instant::now();
        let lane_reports =
            LaneSet::fused_replay_with_arena(&program, &cfgs, &trace, &mut arena).run();
        let secs = started.elapsed().as_secs_f64();
        for (lane, report) in lane_reports.iter().enumerate() {
            assert_eq!(
                *report, solo_reports[lane],
                "fused lane {lane} diverged from its solo run"
            );
        }
        let insts: u64 = lane_reports.iter().map(|r| r.insts).sum();
        let cycles: u64 = lane_reports.iter().map(|r| r.cycles).sum();
        let mips = insts as f64 / secs / 1.0e6;
        println!(
            "{:<9} {:<20} {:>10} {:>10} {:>9.1} {:>8.2}",
            name,
            "fused-x5",
            insts,
            cycles,
            secs * 1e3,
            mips
        );
        fused_rows.push(FusedRow {
            profile: name,
            insts,
            cycles,
            wall_secs: secs,
            mips,
        });

        // Sampled estimate of the headline `nosq` configuration:
        // fast-forward 10% as warm-up, then 20 windows of 1k
        // instructions. Error is reported against the full solo run
        // measured above.
        let plan = SamplePlan {
            warmup: n / 10,
            interval: 1_000,
            count: 20,
        };
        let started = Instant::now();
        let est =
            sampled_replay_with_arena(&program, SimConfig::nosq(n), &trace, &plan, &mut arena);
        let secs = started.elapsed().as_secs_f64();
        let full = &solo_reports[3]; // configs(n)[3] is `nosq`
        let est_ipc = est.ipc();
        let full_ipc = full.insts as f64 / full.cycles as f64;
        let effective_mips = est.total_insts as f64 / secs / 1.0e6;
        let ipc_err_pct = (est_ipc - full_ipc).abs() / full_ipc * 100.0;
        println!(
            "{:<9} {:<20} {:>10} {:>10} {:>9.1} {:>8.2}  (IPC {:.3} vs {:.3}, err {:.1}%)",
            name,
            "sampled-nosq",
            est.measured_insts,
            est.measured_cycles,
            secs * 1e3,
            effective_mips,
            est_ipc,
            full_ipc,
            ipc_err_pct,
        );
        sampled_rows.push(SampledRow {
            profile: name,
            windows: est.windows,
            measured_insts: est.measured_insts,
            total_insts: est.total_insts,
            wall_secs: secs,
            effective_mips,
            est_ipc,
            full_ipc,
            ipc_err_pct,
        });
    }

    let json = throughput_json(n, &points, &tracer_points, &fused_rows, &sampled_rows);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    std::fs::write(path, &json).expect("write BENCH_throughput.json");
    println!("(wrote {path})");

    let agg_insts: u64 = points.iter().map(|p| p.insts).sum();
    let agg_secs: f64 = points.iter().map(|p| p.wall_secs).sum();
    let fused_insts: u64 = fused_rows.iter().map(|f| f.insts).sum();
    let fused_secs: f64 = fused_rows.iter().map(|f| f.wall_secs).sum();
    println!(
        "aggregate pipeline throughput: {:.2} MIPS solo, {:.2} MIPS fused, over {} points",
        agg_insts as f64 / agg_secs / 1.0e6,
        fused_insts as f64 / fused_secs / 1.0e6,
        points.len()
    );
}

fn throughput_json(
    n: u64,
    points: &[Point],
    tracer: &[(&str, u64, f64, f64)],
    fused: &[FusedRow],
    sampled: &[SampledRow],
) -> String {
    let mut obj = JsonObject::new();
    obj.field_u64("dyn_insts_budget", n);

    let mut tr = JsonArray::new();
    for (name, insts, secs, mips) in tracer {
        let mut o = JsonObject::new();
        o.field_str("profile", name)
            .field_u64("insts", *insts)
            .field_raw("wall_secs", &json_f64(*secs))
            .field_raw("mips", &json_f64(*mips));
        tr.push_raw(&o.finish());
    }
    obj.field_raw("tracer", &tr.finish());

    let mut arr = JsonArray::new();
    for p in points {
        let mut o = JsonObject::new();
        o.field_str("profile", p.profile)
            .field_str("config", p.config)
            .field_u64("insts", p.insts)
            .field_u64("cycles", p.cycles)
            .field_raw("wall_secs", &json_f64(p.wall_secs))
            .field_raw("mips", &json_f64(p.mips));
        arr.push_raw(&o.finish());
    }
    obj.field_raw("pipeline", &arr.finish());

    let mut fu = JsonArray::new();
    for f in fused {
        let mut o = JsonObject::new();
        o.field_str("profile", f.profile)
            .field_u64("insts", f.insts)
            .field_u64("cycles", f.cycles)
            .field_raw("wall_secs", &json_f64(f.wall_secs))
            .field_raw("mips", &json_f64(f.mips));
        fu.push_raw(&o.finish());
    }
    obj.field_raw("fused", &fu.finish());

    let mut sa = JsonArray::new();
    for s in sampled {
        let mut o = JsonObject::new();
        o.field_str("profile", s.profile)
            .field_str("config", "nosq")
            .field_u64("windows", s.windows)
            .field_u64("measured_insts", s.measured_insts)
            .field_u64("total_insts", s.total_insts)
            .field_raw("wall_secs", &json_f64(s.wall_secs))
            .field_raw("effective_mips", &json_f64(s.effective_mips))
            .field_raw("est_ipc", &json_f64(s.est_ipc))
            .field_raw("full_ipc", &json_f64(s.full_ipc))
            .field_raw("ipc_err_pct", &json_f64(s.ipc_err_pct));
        sa.push_raw(&o.finish());
    }
    obj.field_raw("sampled", &sa.finish());

    let agg_insts: u64 = points.iter().map(|p| p.insts).sum();
    let agg_secs: f64 = points.iter().map(|p| p.wall_secs).sum();
    let tr_insts: u64 = tracer.iter().map(|t| t.1).sum();
    let tr_secs: f64 = tracer.iter().map(|t| t.2).sum();
    let fu_insts: u64 = fused.iter().map(|f| f.insts).sum();
    let fu_secs: f64 = fused.iter().map(|f| f.wall_secs).sum();
    obj.field_raw(
        "aggregate_pipeline_mips",
        &json_f64(agg_insts as f64 / agg_secs / 1.0e6),
    );
    obj.field_raw(
        "aggregate_tracer_mips",
        &json_f64(tr_insts as f64 / tr_secs / 1.0e6),
    );
    obj.field_raw(
        "aggregate_fused_mips",
        &json_f64(fu_insts as f64 / fu_secs / 1.0e6),
    );
    obj.finish()
}
