//! Criterion benchmarks for the dependence-oracle pass: how fast
//! `nosq-audit`'s ground truth is produced. The oracle runs once per
//! audited profile and amortizes over every preset in the grid, so its
//! single-pass build throughput (and the derived `comm_stats` fold)
//! bounds how much auditing a campaign can afford.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nosq_trace::{synthesize, DependenceGraph, Profile};

const INSTS: u64 = 50_000;

fn bench_oracle_pass(c: &mut Criterion) {
    let mut g = c.benchmark_group("depgraph");
    for name in ["gzip", "gcc"] {
        let program = synthesize(Profile::by_name(name).expect("profile"), 42);
        g.bench_function(&format!("build/{name}"), |b| {
            b.iter(|| black_box(DependenceGraph::from_program(black_box(&program), INSTS)));
        });
        let graph = DependenceGraph::from_program(&program, INSTS);
        g.bench_function(&format!("comm_stats/{name}"), |b| {
            b.iter(|| black_box(graph.comm_stats(black_box(128))));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_oracle_pass);
criterion_main!(benches);
