//! Regenerates **Figure 4**: data-cache reads of NoSQ (with delay)
//! relative to the associative-store-queue baseline, split into
//! out-of-order-core reads and back-end re-execution reads.
//!
//! The paper's finding: because bypassed loads skip the cache in the
//! out-of-order core and the T-SSBF filters most re-executions (~0.7% of
//! loads re-execute), NoSQ reduces data-cache reads roughly in proportion
//! to the bypassing frequency — ~9% on average, up to 40% (mesa.o).

use nosq_bench::{dyn_insts, parallel_over_profiles, SuiteTable};
use nosq_core::{simulate, SimConfig};
use nosq_trace::{Profile, Suite};

struct Row {
    profile: &'static Profile,
    ooo_frac: f64,
    backend_frac: f64,
    reexec_rate: f64,
}

fn main() {
    let n = dyn_insts();
    let profiles = Profile::selected();
    let rows = parallel_over_profiles(&profiles, |p| {
        let program = nosq_bench::workload(p);
        let base = simulate(&program, SimConfig::baseline_storesets(n));
        let nosq = simulate(&program, SimConfig::nosq(n));
        let denom = base.dcache_reads().max(1) as f64;
        Row {
            profile: p,
            ooo_frac: nosq.memory.ooo_dcache_reads as f64 / denom,
            backend_frac: nosq.verification.backend_dcache_reads as f64 / denom,
            reexec_rate: nosq.reexec_rate(),
        }
    });

    let mut table = SuiteTable::new(format!(
        "{:<9} | {:>9} {:>9} {:>9} | {:>8}   (reads relative to assoc-SQ baseline)",
        "Figure 4", "ooo-core", "back-end", "total", "reexec%"
    ));
    for r in &rows {
        table.row(
            r.profile.suite,
            format!(
                "{:<9} | {:>9.3} {:>9.3} {:>9.3} | {:>8.2}",
                r.profile.name,
                r.ooo_frac,
                r.backend_frac,
                r.ooo_frac + r.backend_frac,
                100.0 * r.reexec_rate
            ),
        );
    }
    let summaries: Vec<_> = Suite::all()
        .into_iter()
        .filter_map(|suite| {
            let in_suite: Vec<&Row> = rows.iter().filter(|r| r.profile.suite == suite).collect();
            if in_suite.is_empty() {
                return None;
            }
            let mean = in_suite
                .iter()
                .map(|r| r.ooo_frac + r.backend_frac)
                .sum::<f64>()
                / in_suite.len() as f64;
            Some((
                suite,
                format!("{:<9} |   total amean {mean:>6.3}", format!("{suite}.avg")),
            ))
        })
        .collect();
    table.print(&summaries);
    println!("(paper: ~4% fewer reads for SPECfp, >10% for MediaBench/SPECint, 40% for mesa.o;");
    println!(" only ~0.7% of loads re-execute)");
    println!("(measured at {n} dynamic instructions per configuration)");
}
