//! # nosq-bench
//!
//! Harness utilities for regenerating the NoSQ paper's evaluation
//! (Table 5 and Figures 2-5). Each `benches/` target is a standalone
//! binary (`harness = false`) that prints the same rows/series the paper
//! reports, with the paper's numbers alongside for comparison.
//!
//! The dynamic-instruction budget per run is controlled by the
//! `NOSQ_DYN_INSTS` environment variable (default 150,000 — enough for
//! the predictors to reach steady state while keeping `cargo bench
//! --workspace` to a few minutes). Increase it for tighter numbers.
//!
//! Set `NOSQ_ARTIFACT_DIR=<dir>` to make the harnesses that support it
//! (Table 5, Figure 2) also write machine-readable JSON/CSV artifacts
//! built from [`nosq_core::SimReport`]'s serialization.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;

use nosq_core::{simulate, SimConfig, SimReport};
use nosq_isa::Program;
use nosq_trace::{synthesize, Profile, Suite};

/// Workload seed shared by all harnesses (results are deterministic).
/// Tied to the campaign engine's default so bench-driven and
/// engine-driven figures always measure the same synthesized workloads.
pub const SEED: u64 = nosq_lab::DEFAULT_SEED;

/// Dynamic instructions per simulation (`NOSQ_DYN_INSTS`, default 150k).
///
/// # Panics
///
/// Panics if `NOSQ_DYN_INSTS` is set but not a positive integer
/// (underscore separators allowed). Silently falling back to the
/// default would make a whole benchmark campaign measure the wrong
/// budget without anyone noticing.
pub fn dyn_insts() -> u64 {
    let Some(raw) = std::env::var_os("NOSQ_DYN_INSTS") else {
        return 150_000;
    };
    let text = raw
        .to_str()
        .unwrap_or_else(|| panic!("NOSQ_DYN_INSTS is not valid UTF-8: {raw:?}"));
    match text.replace('_', "").parse() {
        Ok(n) if n > 0 => n,
        _ => panic!("NOSQ_DYN_INSTS must be a positive integer, got `{text}`"),
    }
}

/// Synthesizes the calibrated workload for a profile.
pub fn workload(profile: &Profile) -> Program {
    synthesize(profile, SEED)
}

/// Runs one configuration over a profile's workload.
pub fn run(profile: &Profile, cfg: SimConfig) -> SimReport {
    let program = workload(profile);
    simulate(&program, cfg)
}

/// Runs several configurations over one shared workload (cheaper than
/// re-synthesizing per configuration).
pub fn run_many(profile: &Profile, cfgs: Vec<SimConfig>) -> Vec<SimReport> {
    let program = workload(profile);
    cfgs.into_iter()
        .map(|cfg| simulate(&program, cfg))
        .collect()
}

/// [`SimReport::relative_time`] with the reference checked: panics if
/// the reference run retired no cycles (which would yield NaN). The
/// paper's relative-execution-time figures are meaningless without a
/// real reference run, so the harnesses fail loudly instead of
/// plotting garbage.
pub fn rel_time(r: &SimReport, reference: &SimReport) -> f64 {
    let rel = r.relative_time(reference);
    assert!(
        !rel.is_nan(),
        "reference run retired no cycles; relative time undefined"
    );
    rel
}

/// Maps each profile through `f` in parallel (profiles are
/// independent). Backed by the `nosq-lab` executor: a lock-free
/// atomic-cursor job pickup with per-worker result buffers, merged back
/// into profile order — no mutex, no per-slot cells.
pub fn parallel_over_profiles<T, F>(profiles: &[&'static Profile], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&'static Profile) -> T + Sync,
{
    nosq_lab::parallel_map_indexed(profiles.len(), 0, |i| f(profiles[i]))
}

/// All profiles, as static references.
pub fn all_profiles() -> Vec<&'static Profile> {
    Profile::all().iter().collect()
}

/// The artifact output directory (`NOSQ_ARTIFACT_DIR`), if configured.
pub fn artifact_dir() -> Option<PathBuf> {
    std::env::var_os("NOSQ_ARTIFACT_DIR").map(PathBuf::from)
}

/// Writes a machine-readable artifact under `NOSQ_ARTIFACT_DIR` and
/// returns its path; a no-op returning `None` when the variable is
/// unset.
///
/// # Panics
///
/// Panics if the directory cannot be created or the file cannot be
/// written — a requested artifact that silently vanishes is worse than
/// a failed run.
pub fn write_artifact(file_name: &str, contents: &str) -> Option<PathBuf> {
    let dir = artifact_dir()?;
    std::fs::create_dir_all(&dir).expect("create NOSQ_ARTIFACT_DIR");
    let path = dir.join(file_name);
    std::fs::write(&path, contents).expect("write artifact");
    println!("(wrote {})", path.display());
    Some(path)
}

/// Formats a suite-grouped table: prints a separator and a per-suite
/// aggregation row after each suite.
pub struct SuiteTable {
    header: String,
    rows: Vec<(Suite, String)>,
}

impl SuiteTable {
    /// Creates a table with the given header line.
    pub fn new(header: impl Into<String>) -> SuiteTable {
        SuiteTable {
            header: header.into(),
            rows: Vec::new(),
        }
    }

    /// Adds one benchmark row.
    pub fn row(&mut self, suite: Suite, line: impl Into<String>) {
        self.rows.push((suite, line.into()));
    }

    /// Prints the table with `summary` lines after each suite (keyed by
    /// suite).
    pub fn print(&self, summaries: &[(Suite, String)]) {
        println!("{}", self.header);
        println!("{}", "-".repeat(self.header.len().min(100)));
        for suite in Suite::all() {
            let mut any = false;
            for (s, line) in &self.rows {
                if *s == suite {
                    println!("{line}");
                    any = true;
                }
            }
            if any {
                for (s, line) in summaries {
                    if *s == suite {
                        println!("{line}");
                    }
                }
                println!();
            }
        }
    }
}

/// Per-suite geometric means of (benchmark → value) pairs.
pub fn suite_geomeans(values: &[(&'static Profile, f64)]) -> Vec<(Suite, f64)> {
    Suite::all()
        .into_iter()
        .map(|suite| {
            let vals: Vec<f64> = values
                .iter()
                .filter(|(p, _)| p.suite == suite)
                .map(|(_, v)| *v)
                .collect();
            (suite, nosq_core::geometric_mean(&vals))
        })
        .filter(|(_, g)| *g > 0.0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dyn_insts_has_sane_default() {
        // Do not mutate the environment (other tests run in parallel);
        // just check the default path when the var is absent.
        if std::env::var("NOSQ_DYN_INSTS").is_err() {
            assert_eq!(dyn_insts(), 150_000);
        }
    }

    /// Helper target for the subprocess tests below: evaluates
    /// `dyn_insts()` whenever the variable is set, so a garbage value
    /// panics (failing the subprocess) and a known-good value is
    /// asserted.
    #[test]
    fn dyn_insts_probe_value() {
        match std::env::var("NOSQ_DYN_INSTS").as_deref() {
            Ok("2_500") => assert_eq!(dyn_insts(), 2_500),
            Ok(_) => {
                let _ = dyn_insts();
            }
            Err(_) => {}
        }
    }

    /// An unparsable `NOSQ_DYN_INSTS` must panic with the offending
    /// value — checked in subprocesses so the parent test environment
    /// stays untouched.
    #[test]
    fn dyn_insts_rejects_garbage() {
        let exe = std::env::current_exe().expect("test binary path");
        for bad in ["abc", "0", "-5", "1.5", ""] {
            let out = std::process::Command::new(&exe)
                .args(["--exact", "tests::dyn_insts_probe_value"])
                .env("NOSQ_DYN_INSTS", bad)
                .output()
                .expect("spawn test subprocess");
            assert!(
                !out.status.success(),
                "NOSQ_DYN_INSTS=`{bad}` must panic, got success"
            );
            let stdout = String::from_utf8_lossy(&out.stdout);
            assert!(
                stdout.contains(bad) || bad.is_empty(),
                "panic message must name the offending value `{bad}`"
            );
        }
    }

    #[test]
    fn dyn_insts_parses_underscored_values() {
        let exe = std::env::current_exe().expect("test binary path");
        let out = std::process::Command::new(&exe)
            .args(["--exact", "tests::dyn_insts_probe_value"])
            .env("NOSQ_DYN_INSTS", "2_500")
            .output()
            .expect("spawn test subprocess");
        assert!(out.status.success(), "2_500 must parse");
    }

    #[test]
    fn parallel_map_preserves_order() {
        let profiles = all_profiles();
        let names = parallel_over_profiles(&profiles, |p| p.name.to_owned());
        let expected: Vec<_> = profiles.iter().map(|p| p.name.to_owned()).collect();
        assert_eq!(names, expected);
    }

    #[test]
    fn run_produces_instructions() {
        let p = Profile::by_name("gsm.e").unwrap();
        let r = run(p, SimConfig::nosq(5_000));
        assert!(r.insts > 4_000);
        assert!(r.cycles > 0);
    }

    #[test]
    fn rel_time_checks_the_reference() {
        let p = Profile::by_name("gsm.e").unwrap();
        let r = run(p, SimConfig::nosq(2_000));
        assert!(rel_time(&r, &r) == 1.0);
        let empty = SimReport::default();
        let panicked = std::panic::catch_unwind(|| rel_time(&r, &empty));
        assert!(panicked.is_err(), "NaN reference must panic");
    }

    #[test]
    fn suite_geomeans_group_correctly() {
        let a = Profile::by_name("gzip").unwrap();
        let b = Profile::by_name("applu").unwrap();
        let g = suite_geomeans(&[(a, 2.0), (b, 8.0)]);
        assert_eq!(g.len(), 2);
        assert!(g
            .iter()
            .any(|(s, v)| *s == Suite::SpecInt && (*v - 2.0).abs() < 1e-12));
        assert!(g
            .iter()
            .any(|(s, v)| *s == Suite::SpecFp && (*v - 8.0).abs() < 1e-12));
    }
}
