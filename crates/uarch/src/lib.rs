//! # nosq-uarch
//!
//! Micro-architectural substrate for the NoSQ simulator (Sha, Martin &
//! Roth, MICRO-39 2006): the structures the paper *assumes* rather than
//! contributes, built from scratch so the timing models in `nosq-core`
//! can be assembled on top.
//!
//! * [`ssn`] — store sequence numbers, the global rename/commit counters,
//!   and wrap-around detection (paper §2).
//! * [`svw`] — store vulnerability window filters: the untagged SSBF and
//!   the tagged, set-associative, FIFO-managed T-SSBF (paper §2.2),
//!   including the size/offset fields NoSQ adds for shift verification
//!   (paper §3.5).
//! * [`storesets`] — the StoreSets dependence predictor used by the
//!   baseline's load scheduler (paper §2.1).
//! * [`branch`] — hybrid gShare/bimodal direction prediction, BTB, RAS.
//! * [`cache`] / [`tlb`] — the two-level data-cache hierarchy and TLBs.
//! * [`config`] — the paper's §4.1 machine configuration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch;
pub mod cache;
pub mod config;
pub mod ssn;
pub mod storesets;
pub mod svw;
pub mod tlb;

pub use cache::{Cache, CacheConfig, MemoryHierarchy};
pub use config::MachineConfig;
pub use ssn::{Ssn, SsnCounters};
pub use storesets::StoreSets;
pub use svw::{Ssbf, Tssbf, TssbfEntry, TssbfLookup};
pub use tlb::Tlb;
