//! Branch prediction: hybrid gShare/bimodal direction predictor, branch
//! target buffer, and return address stack (paper §4.1: 12k-entry hybrid
//! predictor, 2k-entry 4-way BTB, 32-entry RAS).

mod bimodal;
mod btb;
mod gshare;
mod hybrid;
mod ras;

pub use bimodal::Bimodal;
pub use btb::Btb;
pub use gshare::GShare;
pub use hybrid::{HybridConfig, HybridPredictor};
pub use ras::ReturnAddressStack;

/// A 2-bit saturating counter.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Counter2(u8);

impl Counter2 {
    /// Weakly-taken initial state.
    pub fn weakly_taken() -> Counter2 {
        Counter2(2)
    }

    /// Current prediction.
    pub fn predict(self) -> bool {
        self.0 >= 2
    }

    /// Trains toward the outcome.
    pub fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

impl nosq_wire::Wire for Counter2 {
    fn enc(&self, e: &mut nosq_wire::Enc) {
        e.put_u8(self.0);
    }
    fn dec(d: &mut nosq_wire::Dec) -> Result<Self, nosq_wire::WireError> {
        let v = d.take_u8()?;
        if v > 3 {
            return Err(nosq_wire::WireError::Invalid("2-bit counter"));
        }
        Ok(Counter2(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_both_ways() {
        let mut c = Counter2::weakly_taken();
        for _ in 0..10 {
            c.update(true);
        }
        assert!(c.predict());
        c.update(false);
        assert!(
            c.predict(),
            "one not-taken must not flip a saturated counter"
        );
        c.update(false);
        assert!(!c.predict());
        for _ in 0..10 {
            c.update(false);
        }
        c.update(true);
        assert!(!c.predict());
    }
}
