//! Return address stack.

/// A fixed-depth circular return-address stack (paper: 32 entries).
/// Overflow silently wraps (overwriting the oldest entry), as in
/// hardware; underflow returns `None`.
#[derive(Clone, Debug)]
pub struct ReturnAddressStack {
    entries: Vec<u64>,
    top: usize,
    depth: usize,
}

impl ReturnAddressStack {
    /// Creates a RAS with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> ReturnAddressStack {
        assert!(capacity > 0, "ras capacity must be positive");
        ReturnAddressStack {
            entries: vec![0; capacity],
            top: 0,
            depth: 0,
        }
    }

    /// Pushes a return address at a call.
    pub fn push(&mut self, return_addr: u64) {
        self.top = (self.top + 1) % self.entries.len();
        self.entries[self.top] = return_addr;
        self.depth = (self.depth + 1).min(self.entries.len());
    }

    /// Pops the predicted return address at a return.
    pub fn pop(&mut self) -> Option<u64> {
        if self.depth == 0 {
            return None;
        }
        let addr = self.entries[self.top];
        self.top = (self.top + self.entries.len() - 1) % self.entries.len();
        self.depth -= 1;
        Some(addr)
    }

    /// Current stack depth (≤ capacity).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Top-of-stack checkpoint for squash recovery. Restoring realigns
    /// the stack pointer; entries pushed after the checkpoint become
    /// invisible (their slots may have been overwritten — the standard
    /// TOS-pointer checkpoint, not a full copy).
    pub fn checkpoint(&self) -> (usize, usize) {
        (self.top, self.depth)
    }

    /// Restores a [`ReturnAddressStack::checkpoint`].
    pub fn restore(&mut self, checkpoint: (usize, usize)) {
        self.top = checkpoint.0 % self.entries.len();
        self.depth = checkpoint.1.min(self.entries.len());
    }
}

nosq_wire::wire_struct!(ReturnAddressStack {
    entries,
    top,
    depth
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut r = ReturnAddressStack::new(32);
        r.push(0x10);
        r.push(0x20);
        assert_eq!(r.pop(), Some(0x20));
        assert_eq!(r.pop(), Some(0x10));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn overflow_wraps_and_keeps_recent() {
        let mut r = ReturnAddressStack::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // overwrites 1
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        // The third pop mispredicts (stale or none) — depth is exhausted.
        assert_eq!(r.pop(), None);
    }
}
