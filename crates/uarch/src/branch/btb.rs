//! Branch target buffer.

/// A set-associative BTB mapping branch PCs to targets, LRU-replaced.
///
/// Entries live in one flat `sets × ways` array (way-major within a
/// set) so a lookup touches a single contiguous run of memory.
#[derive(Clone, Debug)]
pub struct Btb {
    entries: Vec<BtbEntry>,
    set_mask: usize,
    ways: usize,
    tick: u64,
}

#[derive(Copy, Clone, Debug, Default)]
struct BtbEntry {
    pc: u64,
    target: u64,
    valid: bool,
    lru: u64,
}

impl Btb {
    /// Creates a BTB with `entries` total entries in `ways`-way sets.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or exceeds `entries`.
    pub fn new(entries: usize, ways: usize) -> Btb {
        assert!(ways > 0 && ways <= entries, "invalid btb geometry");
        let n_sets = (entries / ways).next_power_of_two().max(1);
        Btb {
            entries: vec![BtbEntry::default(); n_sets * ways],
            set_mask: n_sets - 1,
            ways,
            tick: 0,
        }
    }

    /// The paper's 2k-entry, 4-way target buffer.
    pub fn paper_default() -> Btb {
        Btb::new(2048, 4)
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & self.set_mask
    }

    /// Predicted target for the control instruction at `pc`, if cached.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        self.tick += 1;
        let idx = self.index(pc);
        let tick = self.tick;
        self.entries[idx * self.ways..(idx + 1) * self.ways]
            .iter_mut()
            .find(|e| e.valid && e.pc == pc)
            .map(|e| {
                e.lru = tick;
                e.target
            })
    }

    /// Installs or refreshes the target for `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        self.tick += 1;
        let idx = self.index(pc);
        let tick = self.tick;
        let set = &mut self.entries[idx * self.ways..(idx + 1) * self.ways];
        if let Some(e) = set.iter_mut().find(|e| e.valid && e.pc == pc) {
            e.target = target;
            e.lru = tick;
            return;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|e| if e.valid { e.lru } else { 0 })
            .expect("ways > 0");
        *victim = BtbEntry {
            pc,
            target,
            valid: true,
            lru: tick,
        };
    }
}

nosq_wire::wire_struct!(BtbEntry {
    pc,
    target,
    valid,
    lru
});
nosq_wire::wire_struct!(Btb {
    entries,
    set_mask,
    ways,
    tick
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_after_update() {
        let mut b = Btb::paper_default();
        assert_eq!(b.lookup(0x40), None);
        b.update(0x40, 0x100);
        assert_eq!(b.lookup(0x40), Some(0x100));
        b.update(0x40, 0x200);
        assert_eq!(b.lookup(0x40), Some(0x200));
    }

    #[test]
    fn conflict_eviction() {
        let mut b = Btb::new(2, 1); // 2 direct-mapped sets
        b.update(0x0, 0x100);
        b.update(0x8, 0x200); // same set as 0x0 (index bits pc>>2 & 1)
        assert_eq!(b.lookup(0x0), None, "evicted by conflicting entry");
        assert_eq!(b.lookup(0x8), Some(0x200));
    }
}
