//! gShare: global-history-XOR-PC indexed direction predictor.

use super::Counter2;

/// A gShare predictor with a configurable global history length.
#[derive(Clone, Debug)]
pub struct GShare {
    table: Vec<Counter2>,
    history: u64,
    history_bits: u32,
}

impl GShare {
    /// Creates a predictor with `entries` counters and `history_bits` of
    /// global history.
    pub fn new(entries: usize, history_bits: u32) -> GShare {
        GShare {
            table: vec![Counter2::weakly_taken(); entries.next_power_of_two().max(2)],
            history: 0,
            history_bits: history_bits.min(63),
        }
    }

    fn index(&self, pc: u64) -> usize {
        let mask = (1u64 << self.history_bits) - 1;
        (((pc >> 2) ^ (self.history & mask)) as usize) & (self.table.len() - 1)
    }

    /// Predicted direction for the branch at `pc` under the current
    /// history.
    pub fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)].predict()
    }

    /// Trains the indexed counter (call *before* shifting history).
    pub fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        self.table[i].update(taken);
    }

    /// Shifts the resolved outcome into the global history.
    pub fn push_history(&mut self, taken: bool) {
        self.history = (self.history << 1) | taken as u64;
    }

    /// Current raw global history (diagnostics / checkpointing).
    pub fn history(&self) -> u64 {
        self.history
    }

    /// Restores history (branch mis-speculation recovery).
    pub fn set_history(&mut self, history: u64) {
        self.history = history;
    }
}

nosq_wire::wire_struct!(GShare {
    table,
    history,
    history_bits
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_an_alternating_branch_bimodal_cannot() {
        let mut g = GShare::new(4096, 8);
        // Alternating T,N,T,N at one PC: after warm-up gShare is perfect.
        let mut correct = 0;
        let mut total = 0;
        let mut taken = true;
        for i in 0..200 {
            let pred = g.predict(0x80);
            if i >= 50 {
                total += 1;
                correct += (pred == taken) as i32;
            }
            g.update(0x80, taken);
            g.push_history(taken);
            taken = !taken;
        }
        assert_eq!(correct, total, "gshare should be perfect on alternation");
    }

    #[test]
    fn history_checkpoint_roundtrip() {
        let mut g = GShare::new(1024, 8);
        g.push_history(true);
        g.push_history(false);
        let h = g.history();
        g.push_history(true);
        g.set_history(h);
        assert_eq!(g.history(), h);
    }
}
