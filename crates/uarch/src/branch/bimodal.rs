//! PC-indexed bimodal direction predictor.

use super::Counter2;

/// A table of 2-bit counters indexed by branch PC.
#[derive(Clone, Debug)]
pub struct Bimodal {
    table: Vec<Counter2>,
}

impl Bimodal {
    /// Creates a predictor with `entries` counters (rounded to a power of
    /// two).
    pub fn new(entries: usize) -> Bimodal {
        Bimodal {
            table: vec![Counter2::weakly_taken(); entries.next_power_of_two().max(2)],
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.table.len() - 1)
    }

    /// Predicted direction for the branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)].predict()
    }

    /// Trains on the resolved outcome.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        self.table[i].update(taken);
    }
}

nosq_wire::wire_struct!(Bimodal { table });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_biased_branch() {
        let mut b = Bimodal::new(1024);
        for _ in 0..4 {
            b.update(0x40, true);
        }
        assert!(b.predict(0x40));
        for _ in 0..4 {
            b.update(0x40, false);
        }
        assert!(!b.predict(0x40));
    }

    #[test]
    fn distinct_pcs_use_distinct_counters() {
        let mut b = Bimodal::new(1024);
        for _ in 0..4 {
            b.update(0x40, true);
            b.update(0x44, false);
        }
        assert!(b.predict(0x40));
        assert!(!b.predict(0x44));
    }
}
