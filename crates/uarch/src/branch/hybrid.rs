//! Hybrid gShare/bimodal predictor with a chooser (paper §4.1's
//! "12k-entry hybrid gShare/bimodal predictor").

use super::{Bimodal, Counter2, GShare};

/// Sizing for the hybrid predictor.
#[derive(Copy, Clone, Debug)]
pub struct HybridConfig {
    /// Bimodal table entries.
    pub bimodal_entries: usize,
    /// gShare table entries.
    pub gshare_entries: usize,
    /// Chooser table entries.
    pub chooser_entries: usize,
    /// gShare global-history length in bits.
    pub history_bits: u32,
}

impl HybridConfig {
    /// The paper's 12k-entry predictor (4k per component).
    pub fn paper_default() -> HybridConfig {
        HybridConfig {
            bimodal_entries: 4096,
            gshare_entries: 4096,
            chooser_entries: 4096,
            history_bits: 12,
        }
    }

    /// The quadrupled predictor used with the 256-entry window (paper
    /// §4.4: "the branch predictor size is quadrupled").
    pub fn paper_large() -> HybridConfig {
        HybridConfig {
            bimodal_entries: 16384,
            gshare_entries: 16384,
            chooser_entries: 16384,
            history_bits: 14,
        }
    }
}

/// The hybrid direction predictor.
#[derive(Clone, Debug)]
pub struct HybridPredictor {
    bimodal: Bimodal,
    gshare: GShare,
    chooser: Vec<Counter2>, // predict() == true → use gshare
}

impl HybridPredictor {
    /// Builds the predictor.
    pub fn new(cfg: HybridConfig) -> HybridPredictor {
        HybridPredictor {
            bimodal: Bimodal::new(cfg.bimodal_entries),
            gshare: GShare::new(cfg.gshare_entries, cfg.history_bits),
            chooser: vec![Counter2::weakly_taken(); cfg.chooser_entries.next_power_of_two().max(2)],
        }
    }

    fn chooser_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.chooser.len() - 1)
    }

    /// Predicted direction for the conditional branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        if self.chooser[self.chooser_index(pc)].predict() {
            self.gshare.predict(pc)
        } else {
            self.bimodal.predict(pc)
        }
    }

    /// Trains all components on the resolved outcome and advances global
    /// history.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let g = self.gshare.predict(pc);
        let b = self.bimodal.predict(pc);
        // Chooser moves toward whichever component was right (when they
        // disagree).
        if g != b {
            let i = self.chooser_index(pc);
            self.chooser[i].update(g == taken);
        }
        self.gshare.update(pc, taken);
        self.bimodal.update(pc, taken);
        self.gshare.push_history(taken);
    }

    /// Global-history checkpoint (for squash recovery).
    pub fn history(&self) -> u64 {
        self.gshare.history()
    }

    /// Restores a history checkpoint.
    pub fn set_history(&mut self, history: u64) {
        self.gshare.set_history(history);
    }
}

nosq_wire::wire_struct!(HybridPredictor {
    bimodal,
    gshare,
    chooser
});

#[cfg(test)]
mod tests {
    use super::*;

    fn run(pattern: impl Iterator<Item = bool>, warmup: usize) -> f64 {
        let mut p = HybridPredictor::new(HybridConfig::paper_default());
        let mut correct = 0usize;
        let mut total = 0usize;
        for (i, taken) in pattern.enumerate() {
            let pred = p.predict(0x100);
            if i >= warmup {
                total += 1;
                correct += (pred == taken) as usize;
            }
            p.update(0x100, taken);
        }
        correct as f64 / total as f64
    }

    #[test]
    fn biased_branch_is_nearly_perfect() {
        let acc = run((0..1000).map(|i| i % 10 != 0), 100);
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn patterned_branch_selects_gshare() {
        // Period-4 pattern TTNT: bimodal alone gets ~75%, gshare ~100%.
        let pat = [true, true, false, true];
        let acc = run((0..2000).map(|i| pat[i % 4]), 500);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn always_taken_is_perfect() {
        let acc = run((0..500).map(|_| true), 50);
        assert_eq!(acc, 1.0);
    }
}
