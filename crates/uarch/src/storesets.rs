//! StoreSets memory-dependence predictor (Chrysos & Emer; paper §2.1).
//!
//! Used by the baseline configuration's load scheduler: loads that have
//! squashed on a store in the past wait for that store's next dynamic
//! instance to execute before issuing.
//!
//! The classic two-table organization: a Store Set ID Table (SSIT) maps
//! load and store PCs to store-set IDs, and a Last Fetched Store Table
//! (LFST) maps each store-set ID to the SSN of the most recently renamed
//! store in the set.

use crate::ssn::Ssn;

/// StoreSets predictor state.
#[derive(Clone, Debug)]
pub struct StoreSets {
    ssit: Vec<Option<u32>>,
    lfst: Vec<Option<Ssn>>,
}

impl StoreSets {
    /// Creates a predictor with `entries` SSIT entries (rounded up to a
    /// power of two). The LFST is sized to the same number of sets.
    pub fn new(entries: usize) -> StoreSets {
        let n = entries.next_power_of_two().max(2);
        StoreSets {
            ssit: vec![None; n],
            lfst: vec![None; n],
        }
    }

    fn index(&self, pc: u64) -> usize {
        // PCs are 4-byte aligned; drop the alignment bits.
        ((pc >> 2) as usize) & (self.ssit.len() - 1)
    }

    /// Renames a store: if it belongs to a store set, it becomes the
    /// set's last-fetched store.
    pub fn rename_store(&mut self, store_pc: u64, ssn: Ssn) {
        let idx = self.index(store_pc);
        if let Some(ssid) = self.ssit[idx] {
            let n = self.lfst.len();
            self.lfst[ssid as usize % n] = Some(ssn);
        }
    }

    /// At a load's rename: the SSN of the most recent store the load is
    /// predicted to depend on, if any.
    pub fn lookup_load(&self, load_pc: u64) -> Option<Ssn> {
        let ssid = self.ssit[self.index(load_pc)]?;
        self.lfst[ssid as usize % self.lfst.len()]
    }

    /// Trains on a memory-ordering violation: the load and store are
    /// placed in the same store set (keyed by the store's SSIT index, so
    /// multiple loads squashing on one store converge to one set).
    pub fn train_violation(&mut self, load_pc: u64, store_pc: u64) {
        let store_idx = self.index(store_pc);
        let ssid = store_idx as u32;
        self.ssit[store_idx] = Some(ssid);
        let load_idx = self.index(load_pc);
        self.ssit[load_idx] = Some(ssid);
    }

    /// Invalidates a set's last-fetched store once it has executed (loads
    /// no longer need to wait for it). Also called during squash rollback
    /// for discarded stores.
    pub fn store_resolved(&mut self, store_pc: u64, ssn: Ssn) {
        let idx = self.index(store_pc);
        if let Some(ssid) = self.ssit[idx] {
            let n = self.lfst.len();
            let slot = &mut self.lfst[ssid as usize % n];
            if *slot == Some(ssn) {
                *slot = None;
            }
        }
    }

    /// Clears all predictor state.
    pub fn clear(&mut self) {
        self.ssit.fill(None);
        self.lfst.fill(None);
    }
}

nosq_wire::wire_struct!(StoreSets { ssit, lfst });

#[cfg(test)]
mod tests {
    use super::*;

    const LOAD_PC: u64 = 0x100;
    const STORE_PC: u64 = 0x200;

    #[test]
    fn untrained_load_predicts_no_dependence() {
        let s = StoreSets::new(4096);
        assert_eq!(s.lookup_load(LOAD_PC), None);
    }

    #[test]
    fn violation_links_load_to_next_store_instance() {
        let mut s = StoreSets::new(4096);
        s.train_violation(LOAD_PC, STORE_PC);
        // The next dynamic instance of the store is recorded at rename...
        s.rename_store(STORE_PC, Ssn(42));
        assert_eq!(s.lookup_load(LOAD_PC), Some(Ssn(42)));
        // ...and cleared once it executes.
        s.store_resolved(STORE_PC, Ssn(42));
        assert_eq!(s.lookup_load(LOAD_PC), None);
    }

    #[test]
    fn unrelated_store_does_not_update_set() {
        let mut s = StoreSets::new(4096);
        s.train_violation(LOAD_PC, STORE_PC);
        s.rename_store(0x300, Ssn(7)); // not in any set
        assert_eq!(s.lookup_load(LOAD_PC), None);
    }

    #[test]
    fn resolved_ignores_stale_ssn() {
        let mut s = StoreSets::new(4096);
        s.train_violation(LOAD_PC, STORE_PC);
        s.rename_store(STORE_PC, Ssn(1));
        s.rename_store(STORE_PC, Ssn(2));
        // Resolving the older instance must not clear the newer one.
        s.store_resolved(STORE_PC, Ssn(1));
        assert_eq!(s.lookup_load(LOAD_PC), Some(Ssn(2)));
    }

    #[test]
    fn clear_forgets_everything() {
        let mut s = StoreSets::new(4096);
        s.train_violation(LOAD_PC, STORE_PC);
        s.rename_store(STORE_PC, Ssn(1));
        s.clear();
        assert_eq!(s.lookup_load(LOAD_PC), None);
    }
}
