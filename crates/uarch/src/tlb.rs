//! Translation lookaside buffer.

/// A set-associative TLB with LRU replacement (4KB pages).
///
/// Entries live in one flat `sets × ways` array (way-major within a
/// set) so a translation touches a single contiguous run of memory.
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: Vec<TlbEntry>,
    set_mask: usize,
    ways: usize,
    tick: u64,
    accesses: u64,
    misses: u64,
}

#[derive(Copy, Clone, Debug, Default)]
struct TlbEntry {
    vpn: u64,
    valid: bool,
    lru: u64,
}

const PAGE_SHIFT: u32 = 12;

impl Tlb {
    /// Creates a TLB with `entries` total entries in `ways`-way sets.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or exceeds `entries`.
    pub fn new(entries: usize, ways: usize) -> Tlb {
        assert!(ways > 0 && ways <= entries, "invalid tlb geometry");
        let n_sets = (entries / ways).next_power_of_two().max(1);
        Tlb {
            entries: vec![TlbEntry::default(); n_sets * ways],
            set_mask: n_sets - 1,
            ways,
            tick: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// The paper's 128-entry, 4-way data TLB.
    pub fn paper_dtlb() -> Tlb {
        Tlb::new(128, 4)
    }

    /// Translates `addr`, filling on miss. Returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        self.accesses += 1;
        let vpn = addr >> PAGE_SHIFT;
        let idx = (vpn as usize) & self.set_mask;
        let set = &mut self.entries[idx * self.ways..(idx + 1) * self.ways];
        if let Some(e) = set.iter_mut().find(|e| e.valid && e.vpn == vpn) {
            e.lru = self.tick;
            return true;
        }
        self.misses += 1;
        let victim = set
            .iter_mut()
            .min_by_key(|e| if e.valid { e.lru } else { 0 })
            .expect("ways > 0");
        victim.vpn = vpn;
        victim.valid = true;
        victim.lru = self.tick;
        false
    }

    /// Lifetime (accesses, misses).
    pub fn stats(&self) -> (u64, u64) {
        (self.accesses, self.misses)
    }

    /// Number of ways per set.
    pub fn ways(&self) -> usize {
        self.ways
    }
}

nosq_wire::wire_struct!(TlbEntry { vpn, valid, lru });
nosq_wire::wire_struct!(Tlb {
    entries,
    set_mask,
    ways,
    tick,
    accesses,
    misses
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut t = Tlb::paper_dtlb();
        assert!(!t.access(0x1000));
        assert!(t.access(0x1ffc));
        assert!(!t.access(0x2000));
    }

    #[test]
    fn capacity_eviction() {
        let mut t = Tlb::new(4, 2); // 2 sets × 2 ways
                                    // Pages 0, 2, 4 map to set 0.
        t.access(0 << PAGE_SHIFT);
        t.access(2 << PAGE_SHIFT);
        t.access(4 << PAGE_SHIFT); // evicts page 0
        assert!(!t.access(0 << PAGE_SHIFT));
        let (acc, miss) = t.stats();
        assert_eq!(acc, 4);
        assert_eq!(miss, 4);
    }
}
