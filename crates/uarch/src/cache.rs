//! Set-associative caches and the two-level data hierarchy (paper §4.1).

use crate::tlb::Tlb;

/// Geometry and latency of one cache level.
#[derive(Copy, Clone, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Access latency in cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// The paper's 64KB 2-way L1 data cache with 3-cycle latency.
    pub fn paper_l1d() -> CacheConfig {
        CacheConfig {
            size_bytes: 64 * 1024,
            line_bytes: 64,
            ways: 2,
            hit_latency: 3,
        }
    }

    /// The paper's 1MB 8-way 10-cycle L2.
    pub fn paper_l2() -> CacheConfig {
        CacheConfig {
            size_bytes: 1024 * 1024,
            line_bytes: 64,
            ways: 8,
            hit_latency: 10,
        }
    }
}

#[derive(Copy, Clone, Debug, Default)]
struct Line {
    tag: u64,
    valid: bool,
    lru: u64,
}

/// A set-associative cache with true-LRU replacement.
///
/// Lines live in one flat `sets × ways` array (way-major within a set)
/// so an access touches a single contiguous run of memory.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    set_mask: usize,
    ways: usize,
    line_shift: u32,
    tick: u64,
    accesses: u64,
    misses: u64,
}

impl Cache {
    /// Builds a cache from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways, or capacity not a
    /// multiple of `ways * line_bytes`).
    pub fn new(cfg: CacheConfig) -> Cache {
        assert!(cfg.ways > 0 && cfg.line_bytes.is_power_of_two());
        let n_lines = cfg.size_bytes / cfg.line_bytes;
        assert!(n_lines >= cfg.ways && n_lines.is_multiple_of(cfg.ways));
        let n_sets = (n_lines / cfg.ways).next_power_of_two();
        Cache {
            lines: vec![Line::default(); n_sets * cfg.ways],
            set_mask: n_sets - 1,
            ways: cfg.ways,
            cfg,
            line_shift: cfg.line_bytes.trailing_zeros(),
            tick: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// Configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accesses `addr`, updating LRU and filling on miss. Returns `true`
    /// on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        self.accesses += 1;
        let line_addr = addr >> self.line_shift;
        let set_idx = (line_addr as usize) & self.set_mask;
        let set = &mut self.lines[set_idx * self.ways..(set_idx + 1) * self.ways];
        if let Some(l) = set.iter_mut().find(|l| l.valid && l.tag == line_addr) {
            l.lru = self.tick;
            return true;
        }
        self.misses += 1;
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("non-empty set");
        victim.tag = line_addr;
        victim.valid = true;
        victim.lru = self.tick;
        false
    }

    /// Lifetime (accesses, misses).
    pub fn stats(&self) -> (u64, u64) {
        (self.accesses, self.misses)
    }
}

/// The load/store side of the memory system: L1D + L2 + memory, with a
/// data TLB.
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    l1d: Cache,
    l2: Cache,
    dtlb: Tlb,
    mem_latency: u64,
    tlb_miss_penalty: u64,
}

impl MemoryHierarchy {
    /// Builds the hierarchy.
    pub fn new(
        l1d: CacheConfig,
        l2: CacheConfig,
        dtlb: Tlb,
        mem_latency: u64,
        tlb_miss_penalty: u64,
    ) -> MemoryHierarchy {
        MemoryHierarchy {
            l1d: Cache::new(l1d),
            l2: Cache::new(l2),
            dtlb,
            mem_latency,
            tlb_miss_penalty,
        }
    }

    /// The paper's hierarchy: 64KB/2-way L1 (3 cycles), 1MB/8-way L2
    /// (10 cycles), 150-cycle memory, 128-entry 4-way DTLB.
    pub fn paper_default() -> MemoryHierarchy {
        MemoryHierarchy::new(
            CacheConfig::paper_l1d(),
            CacheConfig::paper_l2(),
            Tlb::paper_dtlb(),
            150,
            30,
        )
    }

    /// A load's access latency (cycles), simulating L1 → L2 → memory and
    /// the DTLB in parallel with L1.
    pub fn load_latency(&mut self, addr: u64) -> u64 {
        let mut lat = self.l1d.config().hit_latency;
        if !self.l1d.access(addr) {
            lat += self.l2.config().hit_latency;
            if !self.l2.access(addr) {
                lat += self.mem_latency;
            }
        }
        if !self.dtlb.access(addr) {
            lat += self.tlb_miss_penalty;
        }
        lat
    }

    /// A committed store's cache update. Write-allocate into L1/L2; with
    /// a write buffer this does not stall commit, so only the TLB penalty
    /// (if any) is returned as occupancy for the shared commit port.
    pub fn store_commit(&mut self, addr: u64) -> u64 {
        if !self.l1d.access(addr) {
            self.l2.access(addr);
        }
        if !self.dtlb.access(addr) {
            self.tlb_miss_penalty
        } else {
            0
        }
    }

    /// (accesses, misses) for the L1 data cache.
    pub fn l1d_stats(&self) -> (u64, u64) {
        self.l1d.stats()
    }

    /// (accesses, misses) for the L2.
    pub fn l2_stats(&self) -> (u64, u64) {
        self.l2.stats()
    }
}

nosq_wire::wire_struct!(CacheConfig {
    size_bytes,
    line_bytes,
    ways,
    hit_latency
});
nosq_wire::wire_struct!(Line { tag, valid, lru });
nosq_wire::wire_struct!(Cache {
    cfg,
    lines,
    set_mask,
    ways,
    line_shift,
    tick,
    accesses,
    misses
});
nosq_wire::wire_struct!(MemoryHierarchy {
    l1d,
    l2,
    dtlb,
    mem_latency,
    tlb_miss_penalty
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(CacheConfig::paper_l1d());
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1004)); // same line
        assert!(!c.access(0x1040)); // next line
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Tiny cache: 2 sets, 2 ways, 64B lines.
        let cfg = CacheConfig {
            size_bytes: 256,
            line_bytes: 64,
            ways: 2,
            hit_latency: 1,
        };
        let mut c = Cache::new(cfg);
        // Three lines mapping to set 0 (line addresses 0, 2, 4).
        c.access(0);
        c.access(2 * 64);
        c.access(0); // refresh line 0
        c.access(4 * 64); // evicts line 2
        assert!(c.access(0), "line 0 must survive");
        assert!(!c.access(2 * 64), "line 2 must have been evicted");
    }

    #[test]
    fn working_set_beyond_capacity_misses() {
        let mut c = Cache::new(CacheConfig::paper_l1d());
        let lines = 3 * (64 * 1024 / 64); // 3× capacity
        for round in 0..2 {
            for i in 0..lines {
                c.access((i * 64) as u64);
            }
            let (acc, miss) = c.stats();
            if round == 1 {
                // Streaming working set 3x capacity: everything misses.
                assert_eq!(acc, 2 * lines as u64);
                assert!(miss > (acc * 9) / 10);
            }
        }
    }

    #[test]
    fn hierarchy_latencies_stack() {
        let mut h = MemoryHierarchy::paper_default();
        let first = h.load_latency(0x4000_0000);
        assert!(first >= 3 + 10 + 150, "cold miss latency {first}");
        let second = h.load_latency(0x4000_0000);
        assert_eq!(second, 3, "hot hit latency");
    }

    #[test]
    fn l2_hit_costs_intermediate_latency() {
        let mut h = MemoryHierarchy::paper_default();
        h.load_latency(0x4000_0000); // cold fill
                                     // Evict from L1 by touching > L1 capacity worth of lines...
        for i in 0..4096u64 {
            h.load_latency(0x5000_0000 + i * 64);
        }
        let lat = h.load_latency(0x4000_0000);
        assert_eq!(lat, 13, "L2 hit should cost l1+l2 latency, got {lat}");
    }
}
