//! Store sequence numbers (paper §2).
//!
//! All dynamic stores are assigned monotonically increasing SSNs at
//! rename. `SSNrename` tracks the most recently renamed store and
//! `SSNcommit` the most recently committed one; their difference is the
//! store-queue occupancy (or, in NoSQ, the number of in-flight stores).

/// A store sequence number. 1-based; `Ssn(0)` means "no store" / "older
/// than anything tracked".
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ssn(pub u64);

impl Ssn {
    /// The null SSN (before any store).
    pub const NONE: Ssn = Ssn(0);

    /// The SSN `distance` stores older than this one, saturating at
    /// [`Ssn::NONE`].
    pub fn minus(self, distance: u64) -> Ssn {
        Ssn(self.0.saturating_sub(distance))
    }

    /// Distance in stores from `older` to `self` (0 if `older` is younger).
    pub fn distance_from(self, older: Ssn) -> u64 {
        self.0.saturating_sub(older.0)
    }
}

impl std::fmt::Display for Ssn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ssn{}", self.0)
    }
}

/// The global SSN counters plus wrap-around detection.
///
/// Hardware SSNs are finite (the paper uses 20 bits); on wrap-around the
/// processor drains its pipeline and clears every SSN-holding structure.
/// The simulator keeps full-width counters for bookkeeping and signals a
/// [`SsnCounters::wrap_pending`] drain event at each 2^bits boundary, so
/// the *performance cost* of wrap handling is modelled without its
/// correctness hazards.
#[derive(Clone, Debug)]
pub struct SsnCounters {
    rename: Ssn,
    commit: Ssn,
    bits: u32,
    wraps: u64,
}

impl SsnCounters {
    /// Creates counters with `bits`-wide hardware SSNs (the paper uses 20).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 63.
    pub fn new(bits: u32) -> SsnCounters {
        assert!((1..=63).contains(&bits), "ssn width {bits} out of range");
        SsnCounters {
            rename: Ssn::NONE,
            commit: Ssn::NONE,
            bits,
            wraps: 0,
        }
    }

    /// Creates counters seeded mid-stream: both `SSNrename` and
    /// `SSNcommit` start at `start` (the number of stores already
    /// committed before this point), as if the machine had renamed and
    /// committed exactly that many stores. Used by sampled simulation
    /// to start a measured window at an arbitrary trace offset while
    /// keeping absolute SSN arithmetic — distances, wrap boundaries —
    /// identical to a full run's.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 63.
    pub fn seeded(bits: u32, start: u64) -> SsnCounters {
        assert!((1..=63).contains(&bits), "ssn width {bits} out of range");
        SsnCounters {
            rename: Ssn(start),
            commit: Ssn(start),
            bits,
            wraps: 0,
        }
    }

    /// SSN of the most recently renamed store.
    pub fn rename(&self) -> Ssn {
        self.rename
    }

    /// SSN of the most recently committed store.
    pub fn commit(&self) -> Ssn {
        self.commit
    }

    /// Number of in-flight stores (`SSNrename − SSNcommit`).
    pub fn in_flight(&self) -> u64 {
        self.rename.0 - self.commit.0
    }

    /// Assigns the next SSN at rename.
    pub fn next_rename(&mut self) -> Ssn {
        self.rename.0 += 1;
        self.rename
    }

    /// Rolls back `SSNrename` after a squash that discarded stores.
    ///
    /// # Panics
    ///
    /// Panics if rolling back past `SSNcommit`.
    pub fn rollback_rename(&mut self, to: Ssn) {
        assert!(to >= self.commit, "cannot roll back committed stores");
        assert!(to <= self.rename, "rollback target is in the future");
        self.rename = to;
    }

    /// Advances `SSNcommit` past one committed store.
    ///
    /// # Panics
    ///
    /// Panics if there is no in-flight store.
    pub fn commit_store(&mut self) -> Ssn {
        assert!(self.commit < self.rename, "no in-flight store to commit");
        self.commit.0 += 1;
        if self.commit.0.is_multiple_of(1 << self.bits) {
            self.wraps += 1;
        }
        self.commit
    }

    /// Whether a hardware wrap-around boundary has been crossed since the
    /// last [`SsnCounters::acknowledge_wrap`]; the pipeline must drain and
    /// clear SSN-holding structures.
    pub fn wrap_pending(&self) -> bool {
        self.wraps > 0
    }

    /// Acknowledges a drain performed for wrap-around.
    pub fn acknowledge_wrap(&mut self) {
        self.wraps = self.wraps.saturating_sub(1);
    }
}

impl nosq_wire::Wire for Ssn {
    fn enc(&self, e: &mut nosq_wire::Enc) {
        e.put_u64(self.0);
    }
    fn dec(d: &mut nosq_wire::Dec) -> Result<Self, nosq_wire::WireError> {
        Ok(Ssn(d.take_u64()?))
    }
}

nosq_wire::wire_struct!(SsnCounters {
    rename,
    commit,
    bits,
    wraps
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rename_commit_track_occupancy() {
        let mut c = SsnCounters::new(20);
        let a = c.next_rename();
        let b = c.next_rename();
        assert_eq!(a, Ssn(1));
        assert_eq!(b, Ssn(2));
        assert_eq!(c.in_flight(), 2);
        assert_eq!(c.commit_store(), Ssn(1));
        assert_eq!(c.in_flight(), 1);
    }

    #[test]
    fn minus_saturates() {
        assert_eq!(Ssn(5).minus(2), Ssn(3));
        assert_eq!(Ssn(1).minus(9), Ssn::NONE);
        assert_eq!(Ssn(7).distance_from(Ssn(4)), 3);
        assert_eq!(Ssn(4).distance_from(Ssn(7)), 0);
    }

    #[test]
    fn rollback_restores_rename() {
        let mut c = SsnCounters::new(20);
        for _ in 0..5 {
            c.next_rename();
        }
        c.commit_store();
        c.rollback_rename(Ssn(2));
        assert_eq!(c.rename(), Ssn(2));
        assert_eq!(c.in_flight(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot roll back committed stores")]
    fn rollback_past_commit_panics() {
        let mut c = SsnCounters::new(20);
        c.next_rename();
        c.commit_store();
        c.rollback_rename(Ssn(0));
    }

    #[test]
    fn wrap_detected_at_boundary() {
        let mut c = SsnCounters::new(3); // wrap every 8 stores
        for _ in 0..8 {
            c.next_rename();
            c.commit_store();
        }
        assert!(c.wrap_pending());
        c.acknowledge_wrap();
        assert!(!c.wrap_pending());
        // Next boundary is another 8 away.
        for _ in 0..7 {
            c.next_rename();
            c.commit_store();
        }
        assert!(!c.wrap_pending());
        c.next_rename();
        c.commit_store();
        assert!(c.wrap_pending());
    }

    #[test]
    #[should_panic(expected = "no in-flight store")]
    fn commit_without_rename_panics() {
        let mut c = SsnCounters::new(20);
        c.commit_store();
    }
}
