//! Machine configuration (paper §4.1).

use nosq_isa::{AluKind, InstClass};

use crate::branch::HybridConfig;
use crate::cache::CacheConfig;

/// Full timing-model configuration for the simulated 4-way superscalar.
///
/// [`MachineConfig::paper_default`] reproduces the paper's §4.1 machine;
/// [`MachineConfig::paper_window256`] reproduces §4.4's scaled machine
/// (window resources doubled, branch predictor quadrupled).
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Fetch/issue/commit width.
    pub width: usize,
    /// Reorder-buffer entries (the instruction window).
    pub rob_size: usize,
    /// Issue-queue entries.
    pub iq_size: usize,
    /// Load-queue entries (baseline; NoSQ can eliminate it).
    pub lq_size: usize,
    /// Store-queue entries (baseline only).
    pub sq_size: usize,
    /// Physical registers.
    pub phys_regs: usize,
    /// Per-cycle issue slots for simple integer ops.
    pub simple_int_slots: usize,
    /// Per-cycle issue slots for complex integer/FP ops.
    pub complex_slots: usize,
    /// Per-cycle issue slots for branches.
    pub branch_slots: usize,
    /// Per-cycle issue slots for loads.
    pub load_slots: usize,
    /// Per-cycle issue slots for stores (baseline; unused by NoSQ).
    pub store_slots: usize,
    /// Front-end depth in cycles from fetch to dispatch (predict 1 +
    /// fetch 3 + decode 1 + rename 1).
    pub front_depth: u64,
    /// Register-read stages between issue and execute.
    pub regread_depth: u64,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Main-memory latency in cycles.
    pub mem_latency: u64,
    /// DTLB entries.
    pub dtlb_entries: usize,
    /// DTLB associativity.
    pub dtlb_ways: usize,
    /// DTLB miss penalty in cycles.
    pub tlb_miss_penalty: u64,
    /// Direction-predictor sizing.
    pub bpred: HybridConfig,
    /// BTB entries.
    pub btb_entries: usize,
    /// BTB associativity.
    pub btb_ways: usize,
    /// RAS depth.
    pub ras_depth: usize,
    /// Hardware SSN width in bits (paper: 20).
    pub ssn_bits: u32,
}

impl MachineConfig {
    /// The paper's §4.1 baseline machine.
    pub fn paper_default() -> MachineConfig {
        MachineConfig {
            width: 4,
            rob_size: 128,
            iq_size: 40,
            lq_size: 48,
            sq_size: 24,
            phys_regs: 160,
            simple_int_slots: 4,
            complex_slots: 2,
            branch_slots: 1,
            load_slots: 1,
            store_slots: 1,
            front_depth: 6,
            regread_depth: 2,
            l1d: CacheConfig::paper_l1d(),
            l2: CacheConfig::paper_l2(),
            mem_latency: 150,
            dtlb_entries: 128,
            dtlb_ways: 4,
            tlb_miss_penalty: 30,
            bpred: HybridConfig::paper_default(),
            btb_entries: 2048,
            btb_ways: 4,
            ras_depth: 32,
            ssn_bits: 20,
        }
    }

    /// The §4.4 scaled machine: all window resources doubled and the
    /// branch predictor quadrupled. (NoSQ's bypassing predictor is *not*
    /// enlarged — that is the point of the experiment.)
    pub fn paper_window256() -> MachineConfig {
        let mut cfg = MachineConfig::paper_default();
        cfg.rob_size = 256;
        cfg.iq_size = 80;
        cfg.lq_size = 96;
        cfg.sq_size = 48;
        cfg.phys_regs = 320;
        cfg.bpred = HybridConfig::paper_large();
        cfg
    }

    /// Execution latency of an instruction class (cycles in the execute
    /// stage, excluding register read and cache access).
    pub fn exec_latency(&self, class: InstClass, alu: Option<AluKind>) -> u64 {
        match class {
            InstClass::SimpleInt | InstClass::Branch => 1,
            InstClass::Load | InstClass::Store => 1, // address generation
            InstClass::Halt => 1,
            InstClass::Complex => match alu {
                Some(AluKind::Mul) => 7,
                Some(AluKind::Div) => 20,
                Some(AluKind::FDiv) => 16,
                Some(AluKind::FAdd) | Some(AluKind::FSub) => 4,
                Some(AluKind::FMul) => 4,
                Some(AluKind::IToF) | Some(AluKind::FToI) => 4,
                _ => 4,
            },
        }
    }

    /// Issue slots available per cycle for a class.
    pub fn slots_for(&self, class: InstClass) -> usize {
        match class {
            InstClass::SimpleInt | InstClass::Halt => self.simple_int_slots,
            InstClass::Complex => self.complex_slots,
            InstClass::Branch => self.branch_slots,
            InstClass::Load => self.load_slots,
            InstClass::Store => self.store_slots,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_4_1() {
        let c = MachineConfig::paper_default();
        assert_eq!(c.width, 4);
        assert_eq!(c.rob_size, 128);
        assert_eq!(c.iq_size, 40);
        assert_eq!(c.lq_size, 48);
        assert_eq!(c.sq_size, 24);
        assert_eq!(c.phys_regs, 160);
        assert_eq!(c.l1d.hit_latency, 3);
        assert_eq!(c.l2.hit_latency, 10);
        assert_eq!(c.mem_latency, 150);
        assert_eq!(c.ssn_bits, 20);
    }

    #[test]
    fn window256_doubles_resources() {
        let c = MachineConfig::paper_window256();
        assert_eq!(c.rob_size, 256);
        assert_eq!(c.lq_size, 96);
        assert_eq!(c.phys_regs, 320);
        assert_eq!(c.bpred.bimodal_entries, 16384);
    }

    #[test]
    fn complex_ops_are_slower() {
        let c = MachineConfig::paper_default();
        assert_eq!(c.exec_latency(InstClass::SimpleInt, None), 1);
        assert!(c.exec_latency(InstClass::Complex, Some(AluKind::Div)) > 10);
        assert!(
            c.exec_latency(InstClass::Complex, Some(AluKind::FMul))
                > c.exec_latency(InstClass::SimpleInt, None)
        );
    }
}
