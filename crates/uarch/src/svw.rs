//! Store vulnerability window (SVW) re-execution filters (paper §2.2).
//!
//! The SVW idea: a load need not re-execute if no store wrote a matching
//! address since the youngest store the load is *not vulnerable* to
//! (`SSNnvul`). The filter is a small table tracking, per (hashed)
//! address, the SSN of the youngest committed store to write it.
//!
//! Two variants are provided:
//!
//! * [`Ssbf`] — the original untagged, direct-mapped Store Sequence Bloom
//!   Filter. Aliasing only ever *over*-estimates the youngest conflicting
//!   SSN, so the inequality test is safe but conservative.
//! * [`Tssbf`] — the tagged, set-associative, FIFO-managed variant.
//!   NoSQ requires tags because its bypassed loads use an *equality*
//!   test, which is unsafe under aliasing (paper §3.4). Entries also
//!   carry the store's size and low-order address bits so partial-word
//!   shift amounts can be learned and verified at commit (paper §3.5).

use crate::ssn::Ssn;

/// 8-byte line index covering `addr`.
fn line_of(addr: u64) -> u64 {
    addr >> 3
}

/// The untagged, direct-mapped SSBF.
///
/// Every committed store writes its SSN into the slot its address hashes
/// to; a load reads the slot and re-executes if the recorded SSN is
/// younger than its `SSNnvul`. Aliasing collapses distinct addresses into
/// one slot, which can only raise the recorded SSN — safe for the
/// inequality test, useless for NoSQ's equality test.
#[derive(Clone, Debug)]
pub struct Ssbf {
    slots: Vec<Ssn>,
}

impl Ssbf {
    /// Creates a filter with `entries` slots (rounded up to a power of 2).
    pub fn new(entries: usize) -> Ssbf {
        let n = entries.next_power_of_two().max(2);
        Ssbf {
            slots: vec![Ssn::NONE; n],
        }
    }

    fn index(&self, line: u64) -> usize {
        (line as usize) & (self.slots.len() - 1)
    }

    /// Records a committed store.
    pub fn record_store(&mut self, addr: u64, size: u8, ssn: Ssn) {
        let first = line_of(addr);
        let last = line_of(addr + size as u64 - 1);
        for line in first..=last {
            let i = self.index(line);
            self.slots[i] = self.slots[i].max(ssn);
        }
    }

    /// The youngest recorded SSN possibly matching the access.
    pub fn youngest(&self, addr: u64, size: u8) -> Ssn {
        let first = line_of(addr);
        let last = line_of(addr + size as u64 - 1);
        (first..=last)
            .map(|line| self.slots[self.index(line)])
            .max()
            .unwrap_or(Ssn::NONE)
    }

    /// The inequality filter test: must the load re-execute?
    pub fn must_reexecute(&self, addr: u64, size: u8, ssn_nvul: Ssn) -> bool {
        self.youngest(addr, size) > ssn_nvul
    }

    /// Clears the filter (SSN wrap-around drain).
    pub fn clear(&mut self) {
        self.slots.fill(Ssn::NONE);
    }
}

/// One T-SSBF entry: the youngest committed store to a (tagged) 8-byte
/// line, with the store's placement for shift verification.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TssbfEntry {
    /// Full line tag (8-byte granularity).
    pub line: u64,
    /// SSN of the youngest committed store to the line.
    pub ssn: Ssn,
    /// The store's byte offset within the line (paper: 3-bit offset).
    pub offset: u8,
    /// The store's size in bytes (paper: 3-bit size).
    pub size: u8,
}

impl TssbfEntry {
    /// The store's full start address.
    pub fn store_addr(&self) -> u64 {
        (self.line << 3) + self.offset as u64
    }

    /// Whether the recorded store covers all `size` bytes at `addr`.
    pub fn covers(&self, addr: u64, size: u8) -> bool {
        let s = self.store_addr();
        s <= addr && addr + size as u64 <= s + self.size as u64
    }
}

/// Result of a T-SSBF lookup.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TssbfLookup {
    /// A tag match: the youngest committed store to the line.
    Hit(TssbfEntry),
    /// No tag match, and no entry young enough to matter was ever evicted
    /// from the set: provably no conflicting committed store since
    /// `evicted_bound`.
    Miss {
        /// Youngest SSN ever evicted from the set (conflicts older than
        /// this are unknowable).
        evicted_bound: Ssn,
    },
    /// The access spans two lines; callers must be conservative.
    Spanning,
}

/// The tagged, set-associative, FIFO-managed T-SSBF.
///
/// Entries live in one flat `sets × ways` array (way-major within a
/// set, FIFO order: the set's first occupied slot is oldest), with
/// per-set occupancy and eviction-bound side arrays — a lookup touches
/// one contiguous run of memory.
#[derive(Clone, Debug)]
pub struct Tssbf {
    entries: Vec<TssbfEntry>,
    set_len: Vec<u8>,
    evicted: Vec<Ssn>,
    set_mask: usize,
    ways: usize,
}

const EMPTY_ENTRY: TssbfEntry = TssbfEntry {
    line: 0,
    ssn: Ssn::NONE,
    offset: 0,
    size: 0,
};

impl Tssbf {
    /// Creates a filter with `entries` total entries in `ways`-way sets.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is 0 or exceeds `entries`.
    pub fn new(entries: usize, ways: usize) -> Tssbf {
        assert!(ways > 0 && ways <= entries, "invalid t-ssbf geometry");
        let n_sets = (entries / ways).next_power_of_two().max(1);
        Tssbf {
            entries: vec![EMPTY_ENTRY; n_sets * ways],
            set_len: vec![0; n_sets],
            evicted: vec![Ssn::NONE; n_sets],
            set_mask: n_sets - 1,
            ways,
        }
    }

    fn set_index(&self, line: u64) -> usize {
        (line as usize) & self.set_mask
    }

    /// Records a committed store (updating an existing line entry in
    /// place, else inserting FIFO).
    pub fn record_store(&mut self, addr: u64, size: u8, ssn: Ssn) {
        let first = line_of(addr);
        let last = line_of(addr + size as u64 - 1);
        for line in first..=last {
            // A spanning store records its own placement clamped per line;
            // loads to a line it spans will see non-covering placement and
            // conservatively re-execute.
            let (offset, sz) = if first == last {
                ((addr & 7) as u8, size)
            } else if line == first {
                ((addr & 7) as u8, (8 - (addr & 7)) as u8)
            } else {
                (0, ((addr + size as u64) & 7) as u8)
            };
            self.record_line(line, offset, sz, ssn);
        }
    }

    fn record_line(&mut self, line: u64, offset: u8, size: u8, ssn: Ssn) {
        let idx = self.set_index(line);
        let mut len = self.set_len[idx] as usize;
        let set = &mut self.entries[idx * self.ways..(idx + 1) * self.ways];
        // Refresh: remove an existing line entry (shift keeps FIFO
        // order), then re-insert at the FIFO tail with the new SSN.
        if let Some(pos) = set[..len].iter().position(|e| e.line == line) {
            set.copy_within(pos + 1..len, pos);
            len -= 1;
        }
        if len == set.len() {
            let victim = set[0];
            self.evicted[idx] = self.evicted[idx].max(victim.ssn);
            set.copy_within(1..len, 0);
            len -= 1;
        }
        set[len] = TssbfEntry {
            line,
            ssn,
            offset,
            size,
        };
        self.set_len[idx] = (len + 1) as u8;
    }

    /// Looks up the youngest committed store possibly overlapping the
    /// access.
    pub fn lookup(&self, addr: u64, size: u8) -> TssbfLookup {
        let first = line_of(addr);
        let last = line_of(addr + size as u64 - 1);
        if first != last {
            return TssbfLookup::Spanning;
        }
        let idx = self.set_index(first);
        let len = self.set_len[idx] as usize;
        let set = &self.entries[idx * self.ways..idx * self.ways + len];
        match set.iter().find(|e| e.line == first) {
            Some(e) => TssbfLookup::Hit(*e),
            None => TssbfLookup::Miss {
                evicted_bound: self.evicted[idx],
            },
        }
    }

    /// The SVW **inequality** test for non-bypassing loads: must the load
    /// re-execute given the youngest store it is not vulnerable to?
    pub fn must_reexecute_inequality(&self, addr: u64, size: u8, ssn_nvul: Ssn) -> bool {
        match self.lookup(addr, size) {
            TssbfLookup::Hit(e) => e.ssn > ssn_nvul,
            TssbfLookup::Miss { evicted_bound } => evicted_bound > ssn_nvul,
            TssbfLookup::Spanning => true,
        }
    }

    /// The SVW **equality** test for bypassed loads (paper §3.4): the load
    /// may skip re-execution only if the youngest committed store to its
    /// line *is* the predicted bypassing store and fully covers the load
    /// (size/offset check, paper §3.5). Returns `true` if re-execution is
    /// required.
    pub fn must_reexecute_equality(&self, addr: u64, size: u8, ssn_byp: Ssn) -> bool {
        match self.lookup(addr, size) {
            TssbfLookup::Hit(e) => e.ssn != ssn_byp || !e.covers(addr, size),
            _ => true,
        }
    }

    /// Clears the filter (SSN wrap-around drain).
    pub fn clear(&mut self) {
        self.set_len.fill(0);
        self.evicted.fill(Ssn::NONE);
    }
}

nosq_wire::wire_struct!(TssbfEntry {
    line,
    ssn,
    offset,
    size
});
nosq_wire::wire_struct!(Tssbf {
    entries,
    set_len,
    evicted,
    set_mask,
    ways
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssbf_inequality_is_conservative_under_aliasing() {
        let mut f = Ssbf::new(4);
        // Two addresses that alias in a 4-slot filter (lines 0 and 4).
        f.record_store(0x0, 8, Ssn(5));
        f.record_store(4 * 8, 8, Ssn(3));
        // The slot keeps the max: a load of the second address sees ssn 5.
        assert!(f.must_reexecute(4 * 8, 8, Ssn(4)));
        // ...even though the true youngest store there was ssn 3 — safe
        // but conservative.
        assert!(!f.must_reexecute(4 * 8, 8, Ssn(6)));
    }

    #[test]
    fn tssbf_hit_tracks_youngest_store() {
        let mut f = Tssbf::new(128, 4);
        f.record_store(0x100, 8, Ssn(1));
        f.record_store(0x100, 8, Ssn(9));
        match f.lookup(0x100, 8) {
            TssbfLookup::Hit(e) => assert_eq!(e.ssn, Ssn(9)),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn tssbf_cold_miss_proves_no_conflict() {
        let f = Tssbf::new(128, 4);
        assert!(!f.must_reexecute_inequality(0x500, 8, Ssn::NONE));
    }

    #[test]
    fn tssbf_eviction_bound_forces_reexecution() {
        let mut f = Tssbf::new(8, 2); // 4 sets × 2 ways
                                      // Fill one set (lines 0, 4, 8 map to set 0 with 4 sets).
        f.record_store(0, 8, Ssn(1));
        f.record_store(4 * 8, 8, Ssn(2));
        f.record_store(8 * 8, 8, Ssn(3)); // evicts line 0 (ssn 1)
                                          // A load of line 0 misses; eviction bound 1 forces re-execution
                                          // for loads vulnerable to ssn 1...
        assert!(f.must_reexecute_inequality(0, 8, Ssn::NONE));
        // ...but not for loads already not vulnerable to it.
        assert!(!f.must_reexecute_inequality(0, 8, Ssn(1)));
    }

    #[test]
    fn equality_test_requires_exact_ssn_and_coverage() {
        let mut f = Tssbf::new(128, 4);
        f.record_store(0x200, 8, Ssn(7));
        // Exact match, full coverage: skip re-execution.
        assert!(!f.must_reexecute_equality(0x204, 2, Ssn(7)));
        // Wrong SSN: re-execute.
        assert!(f.must_reexecute_equality(0x204, 2, Ssn(6)));
        // Younger store to the same line overwrites: re-execute.
        f.record_store(0x200, 2, Ssn(8));
        assert!(f.must_reexecute_equality(0x204, 2, Ssn(7)));
    }

    #[test]
    fn equality_test_rejects_partial_coverage() {
        let mut f = Tssbf::new(128, 4);
        // 2-byte store; a 4-byte load at the same address is not covered.
        f.record_store(0x300, 2, Ssn(4));
        assert!(f.must_reexecute_equality(0x300, 4, Ssn(4)));
        assert!(!f.must_reexecute_equality(0x300, 2, Ssn(4)));
    }

    #[test]
    fn spanning_accesses_are_conservative() {
        let mut f = Tssbf::new(128, 4);
        f.record_store(0x104, 8, Ssn(3)); // spans lines 0x20 and 0x21
        assert_eq!(f.lookup(0x104, 8), TssbfLookup::Spanning);
        assert!(f.must_reexecute_inequality(0x104, 8, Ssn(99)));
        // Within-line lookups of the spanning store see per-line placement
        // that does not cover a full-word load.
        assert!(f.must_reexecute_equality(0x100, 8, Ssn(3)));
    }

    #[test]
    fn entry_shift_reconstruction() {
        let mut f = Tssbf::new(128, 4);
        f.record_store(0x408, 8, Ssn(2));
        if let TssbfLookup::Hit(e) = f.lookup(0x40c, 2) {
            assert_eq!(e.store_addr(), 0x408);
            assert_eq!(0x40cu64 - e.store_addr(), 4); // shift amount
        } else {
            panic!("expected hit");
        }
    }

    #[test]
    fn clear_resets_entries_and_bounds() {
        let mut f = Tssbf::new(8, 2);
        for i in 0..6 {
            f.record_store(i * 8, 8, Ssn(i + 1));
        }
        f.clear();
        assert!(!f.must_reexecute_inequality(0, 8, Ssn::NONE));
        assert_eq!(
            f.lookup(0, 8),
            TssbfLookup::Miss {
                evicted_bound: Ssn::NONE
            }
        );
    }
}
