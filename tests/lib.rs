//! Shared helpers for the NoSQ integration tests.

use nosq_core::{simulate, SimConfig, SimReport};
use nosq_isa::Program;

/// The five configurations of the paper's evaluation.
pub fn all_configs(max_insts: u64) -> Vec<(&'static str, SimConfig)> {
    vec![
        ("baseline-perfect", SimConfig::baseline_perfect(max_insts)),
        (
            "baseline-storesets",
            SimConfig::baseline_storesets(max_insts),
        ),
        ("nosq-no-delay", SimConfig::nosq_no_delay(max_insts)),
        ("nosq-delay", SimConfig::nosq(max_insts)),
        ("perfect-smb", SimConfig::perfect_smb(max_insts)),
    ]
}

/// Runs a program through all five configurations.
pub fn run_all(program: &Program, max_insts: u64) -> Vec<(&'static str, SimReport)> {
    all_configs(max_insts)
        .into_iter()
        .map(|(name, cfg)| (name, simulate(program, cfg)))
        .collect()
}
