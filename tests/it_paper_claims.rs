//! The paper's headline quantitative claims, checked as *shapes* on the
//! calibrated synthetic workloads (absolute numbers differ from the
//! authors' testbed; see EXPERIMENTS.md).

use nosq_core::{geometric_mean, simulate, SimConfig};
use nosq_trace::{synthesize, Profile};

const BUDGET: u64 = 60_000;

fn picks() -> Vec<&'static Profile> {
    [
        "gzip", "g721.e", "eon.k", "mesa.o", "applu", "gsm.e", "vortex",
    ]
    .iter()
    .map(|n| Profile::by_name(n).expect("profile"))
    .collect()
}

/// §4.3 / abstract: "this simpler design — despite being more
/// speculative — slightly outperforms a conventional store-queue based
/// design on most benchmarks (by 2% on average)". We check the shape:
/// the NoSQ-with-delay geomean is no worse than the realistic baseline.
#[test]
fn nosq_with_delay_matches_or_beats_the_baseline_on_average() {
    let mut base_rel = Vec::new();
    let mut nosq_rel = Vec::new();
    for p in picks() {
        let program = synthesize(p, 42);
        let ideal = simulate(&program, SimConfig::baseline_perfect(BUDGET));
        let base = simulate(&program, SimConfig::baseline_storesets(BUDGET));
        let nosq = simulate(&program, SimConfig::nosq(BUDGET));
        base_rel.push(base.relative_time(&ideal));
        nosq_rel.push(nosq.relative_time(&ideal));
    }
    let base_g = geometric_mean(&base_rel);
    let nosq_g = geometric_mean(&nosq_rel);
    assert!(
        nosq_g <= base_g + 0.005,
        "NoSQ geomean {nosq_g:.3} vs baseline {base_g:.3}"
    );
}

/// §4.3: perfect SMB outperforms everything, but only modestly ("by only
/// 3.7% on average... NoSQ captures about half the benefit").
#[test]
fn perfect_smb_is_the_upper_bound_and_modest() {
    let mut rel = Vec::new();
    for p in picks() {
        let program = synthesize(p, 42);
        let ideal = simulate(&program, SimConfig::baseline_perfect(BUDGET));
        let smb = simulate(&program, SimConfig::perfect_smb(BUDGET));
        let nosq = simulate(&program, SimConfig::nosq(BUDGET));
        let r = smb.relative_time(&ideal);
        assert!(
            r <= nosq.relative_time(&ideal) + 0.01,
            "{}: perfect SMB must not lose to realistic NoSQ",
            p.name
        );
        rel.push(r);
    }
    let g = geometric_mean(&rel);
    assert!((0.85..=1.01).contains(&g), "perfect-SMB geomean {g:.3}");
}

/// §4.2: delay cuts mis-predictions sharply where they are frequent
/// (g721.e: 40.9 → 0.7 per 10k in the paper).
#[test]
fn delay_suppresses_mispredictions() {
    // Longer budget so the confidence mechanism's warm-up is amortized.
    let budget = 3 * BUDGET;
    let p = Profile::by_name("g721.e").unwrap();
    let program = synthesize(p, 42);
    let nd = simulate(&program, SimConfig::nosq_no_delay(budget));
    let d = simulate(&program, SimConfig::nosq(budget));
    assert!(
        nd.mispredicts_per_10k_loads() > 15.0,
        "no-delay rate {:.1}",
        nd.mispredicts_per_10k_loads()
    );
    assert!(
        d.mispredicts_per_10k_loads() < nd.mispredicts_per_10k_loads() / 2.5,
        "delay {:.1} vs no-delay {:.1}",
        d.mispredicts_per_10k_loads(),
        nd.mispredicts_per_10k_loads()
    );
    assert!(d.memory.delayed_loads > 0, "delay mechanism unused");
}

/// §4.5: NoSQ reduces data-cache reads in proportion to bypassing
/// frequency (9% on average in the paper; mesa.o up to 40%).
#[test]
fn nosq_reduces_dcache_reads_on_communication_heavy_code() {
    let p = Profile::by_name("mesa.o").unwrap();
    let program = synthesize(p, 42);
    let base = simulate(&program, SimConfig::baseline_storesets(BUDGET));
    let nosq = simulate(&program, SimConfig::nosq(BUDGET));
    let ratio = nosq.dcache_reads() as f64 / base.dcache_reads() as f64;
    assert!(ratio < 0.85, "dcache read ratio {ratio:.3}");
}

/// §4.5: the T-SSBF keeps the re-execution rate tiny (0.7% of loads in
/// the paper).
#[test]
fn reexecution_rate_is_small() {
    for p in picks() {
        let program = synthesize(p, 42);
        let nosq = simulate(&program, SimConfig::nosq(BUDGET));
        assert!(
            nosq.reexec_rate() < 0.12,
            "{}: re-execution rate {:.3}",
            p.name,
            nosq.reexec_rate()
        );
    }
}

/// §4.2: predictor accuracy exceeds 99% everywhere with delay (99.8% in
/// the paper; we allow a wider band for the synthetic workloads).
#[test]
fn prediction_accuracy_is_high_with_delay() {
    for p in picks() {
        let program = synthesize(p, 42);
        let d = simulate(&program, SimConfig::nosq(BUDGET));
        assert!(
            d.mispredicts_per_10k_loads() < 100.0,
            "{}: {:.1} mispredicts per 10k loads",
            p.name,
            d.mispredicts_per_10k_loads()
        );
    }
}

/// §4.4: the larger window does not break NoSQ (its advantage shrinks in
/// the paper but the design keeps working).
#[test]
fn window256_keeps_working() {
    let p = Profile::by_name("gzip").unwrap();
    let program = synthesize(p, 42);
    let ideal = simulate(
        &program,
        SimConfig::baseline_perfect(BUDGET).with_window256(),
    );
    let nosq = simulate(&program, SimConfig::nosq(BUDGET).with_window256());
    let rel = nosq.relative_time(&ideal);
    assert!(rel < 1.15, "256-window relative time {rel:.3}");
}
