//! Architectural agreement: timing models must never change semantics.
//! Every configuration commits exactly the same dynamic instruction
//! stream — all the speculation in NoSQ is repaired by verification
//! before it can affect committed state.

use nosq_integration::run_all;
use nosq_isa::InstClass;
use nosq_trace::{synthesize, Profile, Tracer};

fn check_profile(name: &str, budget: u64) {
    let profile = Profile::by_name(name).expect("profile exists");
    let program = synthesize(profile, 42);
    // Ground truth from the functional trace.
    let mut loads = 0u64;
    let mut stores = 0u64;
    let mut insts = 0u64;
    for d in Tracer::new(&program, budget) {
        insts += 1;
        match d.class {
            InstClass::Load => loads += 1,
            InstClass::Store => stores += 1,
            _ => {}
        }
    }
    for (cfg_name, r) in run_all(&program, budget) {
        assert_eq!(r.insts, insts, "{name}/{cfg_name}: committed instructions");
        assert_eq!(r.memory.loads, loads, "{name}/{cfg_name}: committed loads");
        assert_eq!(
            r.memory.stores, stores,
            "{name}/{cfg_name}: committed stores"
        );
        assert!(r.cycles > 0, "{name}/{cfg_name}: ran no cycles");
    }
}

#[test]
fn communication_heavy_profile_agrees() {
    check_profile("mesa.o", 40_000);
}

#[test]
fn mispredict_heavy_profile_agrees() {
    check_profile("eon.k", 40_000);
}

#[test]
fn partial_word_profile_agrees() {
    check_profile("g721.e", 40_000);
}

#[test]
fn memory_bound_profile_agrees() {
    check_profile("mcf", 20_000);
}

#[test]
fn no_communication_profile_agrees() {
    check_profile("lucas", 40_000);
}

#[test]
fn float_profile_agrees() {
    check_profile("wupwise", 40_000);
}

#[test]
fn window256_commits_identically() {
    use nosq_core::{simulate, SimConfig};
    let profile = Profile::by_name("vortex").unwrap();
    let program = synthesize(profile, 42);
    let small = simulate(&program, SimConfig::nosq(30_000));
    let big = simulate(&program, SimConfig::nosq(30_000).with_window256());
    assert_eq!(small.insts, big.insts);
    assert_eq!(small.memory.loads, big.memory.loads);
}
