//! Integration suite for `nosq check`: the model checker must verify
//! the lab's lock-free structures clean under exhaustive exploration,
//! catch the deliberately seeded synchronization bug, and explore
//! non-vacuously (an exploration that visits one schedule proves
//! nothing).

use nosq_check::sync::SlotCell;
use nosq_check::{CheckRule, ModelSync, Ordering, SyncFacade};
use nosq_lab::{check_json, model_names, run_checks, BoundPreset, CheckOptions};

fn options(bound: BoundPreset, model: &str, seed_bug: bool) -> CheckOptions {
    CheckOptions {
        bound,
        model: Some(model.to_owned()),
        seed_bug,
    }
}

#[test]
fn the_clean_suite_verifies_exhaustively() {
    // Full bounds: no preemption bound, so a clean+complete report is
    // an exhaustive proof within the checker's memory model.
    for model in model_names(false) {
        let reports = run_checks(&options(BoundPreset::Full, model, false)).unwrap();
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert!(
            r.is_clean(),
            "{model} should verify clean: {:?}",
            r.diagnostics
        );
        assert!(r.complete, "{model} exploration should be exhaustive");
        assert_eq!(r.skipped_preemptions, 0, "{model} ran unbounded");
    }
}

#[test]
fn exploration_is_not_vacuous() {
    // Pin floors on the schedule count so a scheduler regression that
    // collapses exploration to one path fails loudly. Pruned executions
    // count as explored — state-hash pruning legitimately absorbs most
    // spin-loop variants. The floors are conservative fractions of the
    // measured values (16 / 414 / 6647 at the time of writing).
    let floors = [("spsc", 10), ("executor-core", 150), ("mpmc", 1000)];
    for (model, floor) in floors {
        let r = &run_checks(&options(BoundPreset::Full, model, false)).unwrap()[0];
        let explored = r.interleavings + r.pruned_states;
        assert!(
            explored >= floor,
            "{model}: only {explored} schedules explored (floor {floor})"
        );
        assert!(r.ops > explored, "{model}: vacuous executions");
    }
}

#[test]
fn the_seeded_relaxed_publish_is_flagged() {
    // The checker's negative control: SPSC publication over a Relaxed
    // store MUST produce a data-race diagnostic on the payload cell.
    // A checker that passes its seeded bug proves nothing.
    let reports = run_checks(&CheckOptions {
        bound: BoundPreset::Small,
        model: None,
        seed_bug: true,
    })
    .unwrap();
    assert_eq!(reports.len(), 1);
    let r = &reports[0];
    assert_eq!(r.model, "spsc-relaxed");
    assert!(!r.is_clean(), "seeded bug escaped the checker");
    let race = r
        .diagnostics
        .iter()
        .find(|d| d.rule == CheckRule::DataRace)
        .expect("expected a data-race diagnostic");
    assert!(
        race.location.as_deref().unwrap_or("").starts_with("cell#"),
        "race should be on the payload cell: {race}"
    );
    assert!(race.prior.is_some() && race.current.is_some());
}

#[test]
fn small_bounds_also_catch_the_seeded_bug_per_model_json() {
    // The CI smoke path: small bounds, JSON artifact, machine-readable
    // verdicts.
    let opts = CheckOptions {
        bound: BoundPreset::Small,
        model: None,
        seed_bug: false,
    };
    let reports = run_checks(&opts).unwrap();
    assert_eq!(reports.len(), model_names(false).len());
    let json = check_json(&opts, &reports);
    assert!(json.contains("\"total_violations\":0"), "{json}");
    assert!(json.contains("\"bound\":\"small\""), "{json}");
    for model in model_names(false) {
        assert!(json.contains(&format!("\"model\":\"{model}\"")), "{json}");
    }
}

#[test]
fn reports_are_deterministic() {
    // Two runs of the same model must agree byte-for-byte — the
    // repo-wide determinism contract extends to the checker.
    for (bound, model) in [
        (BoundPreset::Full, "executor-core"),
        (BoundPreset::Small, "mpmc"),
    ] {
        let a = run_checks(&options(bound, model, false)).unwrap();
        let b = run_checks(&options(bound, model, false)).unwrap();
        assert_eq!(a[0].to_json(), b[0].to_json(), "{model} not deterministic");
    }
}

#[test]
fn direct_engine_use_agrees_with_the_suite() {
    // A minimal hand-rolled model through the public API: two writers
    // race on an unsynchronized slot; flagged under any bounds.
    let report = nosq_check::check_model("two-writers", &nosq_check::Bounds::default(), || {
        let cell = <ModelSync as SyncFacade>::Slot::<u8>::new();
        ModelSync::run_threads(
            2,
            |k| {
                cell.put(k as u8);
            },
            None,
        );
    });
    assert!(!report.is_clean());
    assert!(report
        .diagnostics
        .iter()
        .all(|d| d.rule == CheckRule::DataRace));
    // And the same protocol with a release/acquire handshake is clean.
    let clean = nosq_check::check_model("handshake", &nosq_check::Bounds::default(), || {
        use nosq_check::sync::AtomicCell;
        let cell = <ModelSync as SyncFacade>::Slot::<u8>::new();
        let turn = <ModelSync as SyncFacade>::AtomicUsize::new(0);
        ModelSync::run_threads(
            2,
            |k| {
                if k == 0 {
                    cell.put(1);
                    turn.store(1, Ordering::Release);
                } else {
                    while turn.load(Ordering::Acquire) == 0 {
                        ModelSync::spin_hint();
                    }
                    cell.put(2);
                }
            },
            None,
        );
    });
    assert!(clean.is_clean(), "{:?}", clean.diagnostics);
    assert!(clean.complete);
}
