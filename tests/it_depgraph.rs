//! Property suite for the dependence-oracle graph: the one-pass
//! [`DepGraphBuilder`] must agree *exactly* with a naive per-byte
//! `BTreeMap` model on every load's producer set, youngest-store
//! identity, distances, coverage, and shift — no matter how stores
//! overlap, straddle pages, or scatter across the address space. The
//! graph is the ground truth `nosq-audit` proves the pipeline against,
//! so any divergence here would turn the auditor's "proofs" into noise.

use std::collections::BTreeMap;

use proptest::prelude::*;

use nosq_isa::{ExecRecord, Extension, Inst, InstClass, MemWidth, Reg};
use nosq_trace::{Coverage, DepGraphBuilder, DynInst};

/// The reference oracle: one `(ssn, seq, addr, width)` entry per byte
/// address, updated store by store.
#[derive(Default)]
struct NaiveOracle {
    bytes: BTreeMap<u64, (u64, u64, u64, u8)>,
}

/// What the naive model expects for one load.
#[derive(Debug, PartialEq, Eq)]
struct Expected {
    byte_ssns: [u64; 8],
    youngest_ssn: u64,
    store_distance: u64,
    inst_distance: u64,
    coverage: Coverage,
    partial_word: bool,
    shift: u8,
}

impl NaiveOracle {
    fn record_store(&mut self, ssn: u64, seq: u64, addr: u64, width: u64) {
        for i in 0..width {
            self.bytes
                .insert(addr.wrapping_add(i), (ssn, seq, addr, width as u8));
        }
    }

    fn scan(&self, seq: u64, stores_before: u64, addr: u64, width: u64) -> Expected {
        let mut byte_ssns = [0u64; 8];
        let mut youngest: Option<(u64, u64, u64, u8)> = None;
        let mut all_same = true;
        let mut any_missing = false;
        for i in 0..width {
            match self.bytes.get(&addr.wrapping_add(i)) {
                Some(&w) => {
                    byte_ssns[i as usize] = w.0;
                    match youngest {
                        None => youngest = Some(w),
                        Some(y) if w.0 != y.0 => {
                            all_same = false;
                            if w.0 > y.0 {
                                youngest = Some(w);
                            }
                        }
                        Some(_) => {}
                    }
                }
                None => any_missing = true,
            }
        }
        let (youngest_ssn, store_distance, inst_distance, shift, partial_word) = match youngest {
            Some((ssn, sseq, saddr, swidth)) => (
                ssn,
                stores_before - ssn,
                seq - sseq,
                addr.wrapping_sub(saddr) as u8,
                swidth < 8 || width < 8,
            ),
            None => (0, 0, 0, 0, false),
        };
        Expected {
            byte_ssns,
            youngest_ssn,
            store_distance,
            inst_distance,
            coverage: if all_same && !any_missing {
                Coverage::Full
            } else {
                Coverage::Partial
            },
            partial_word,
            shift,
        }
    }
}

#[derive(Clone, Debug)]
struct Op {
    store: bool,
    addr: u64,
    width: u64,
}

/// Same address-space stress shape as `it_lastwriter`: dense overlap,
/// both page-boundary straddles, sparse pages, and the wrap-around end
/// of the address space.
fn addr_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        (0u64..64).prop_map(|o| 0x1000 + o),
        (0u64..16).prop_map(|o| 0x13f8 + o),
        (0u64..16).prop_map(|o| 0x1ff8 + o),
        (0u64..64).prop_map(|o| 0x9_0000 + o * 0x400),
        (0u64..8).prop_map(|o| u64::MAX - 7 + o),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (
        any::<bool>(),
        addr_strategy(),
        prop_oneof![Just(1u64), Just(2u64), Just(4u64), Just(8u64)],
    )
        .prop_map(|(store, addr, width)| Op { store, addr, width })
}

fn mem_width(bytes: u64) -> MemWidth {
    match bytes {
        1 => MemWidth::B1,
        2 => MemWidth::B2,
        4 => MemWidth::B4,
        _ => MemWidth::B8,
    }
}

/// A synthetic committed-stream instruction; `mem_dep` is left `None`
/// (the builder computes its own dependences — that is the point).
fn dyn_inst(seq: u64, stores_before: u64, op: &Op) -> DynInst {
    let inst = if op.store {
        Inst::Store {
            data: Reg::int(1),
            base: Reg::int(2),
            ofs: 0,
            width: mem_width(op.width),
            float32: false,
        }
    } else {
        Inst::Load {
            rd: Reg::int(1),
            base: Reg::int(2),
            ofs: 0,
            width: mem_width(op.width),
            ext: Extension::Zero,
        }
    };
    DynInst {
        seq,
        rec: ExecRecord {
            // Small static PC alphabet so store-set clustering has
            // something to merge.
            pc: 0x400 + (seq % 7) * 4,
            inst,
            addr: op.addr,
            load_value: seq ^ 0xa5a5,
            store_data: 0,
            store_mem_bits: 0,
            taken: false,
            next_pc: 0,
        },
        class: if op.store {
            InstClass::Store
        } else {
            InstClass::Load
        },
        stores_before,
        mem_dep: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The one-pass graph equals the naive per-byte model on every load.
    #[test]
    fn graph_matches_naive_per_byte_model(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut builder = DepGraphBuilder::new();
        let mut naive = NaiveOracle::default();
        let mut expected = Vec::new();
        let mut stores = 0u64;
        for (seq, op) in ops.iter().enumerate() {
            let d = dyn_inst(seq as u64, stores, op);
            builder.push(&d);
            if op.store {
                stores += 1;
                naive.record_store(stores, seq as u64, op.addr, op.width);
            } else {
                expected.push((d.seq, naive.scan(seq as u64, stores, op.addr, op.width)));
            }
        }
        let graph = builder.finish();
        prop_assert_eq!(graph.insts(), ops.len() as u64);
        prop_assert_eq!(graph.stores().len() as u64, stores);
        prop_assert_eq!(graph.loads().len(), expected.len());
        for (load, (seq, want)) in graph.loads().iter().zip(&expected) {
            prop_assert_eq!(load.seq, *seq);
            let got = Expected {
                byte_ssns: load.byte_ssns,
                youngest_ssn: load.youngest_ssn,
                store_distance: load.store_distance,
                inst_distance: load.inst_distance,
                coverage: load.coverage,
                partial_word: load.partial_word,
                shift: load.shift,
            };
            prop_assert_eq!(&got, want, "load seq {} diverged", seq);
            // The public producer view is the distinct nonzero per-byte
            // SSNs, and communication means "any produced byte".
            let mut ssns: Vec<u64> =
                want.byte_ssns.iter().copied().filter(|&s| s != 0).collect();
            ssns.sort_unstable();
            ssns.dedup();
            prop_assert_eq!(load.producers(), ssns);
            prop_assert_eq!(load.communicates(), want.youngest_ssn != 0);
        }
    }

    /// Structural invariants: stores are SSN-dense and addressable by
    /// `store_by_ssn`, loads by `load_by_seq`, and `comm_stats` is the
    /// per-load fold it claims to be.
    #[test]
    fn graph_indices_and_stats_are_consistent(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut builder = DepGraphBuilder::new();
        let mut stores = 0u64;
        for (seq, op) in ops.iter().enumerate() {
            builder.push(&dyn_inst(seq as u64, stores, op));
            if op.store {
                stores += 1;
            }
        }
        let graph = builder.finish();
        for (i, s) in graph.stores().iter().enumerate() {
            prop_assert_eq!(s.ssn, i as u64 + 1);
            prop_assert_eq!(graph.store_by_ssn(s.ssn), Some(s));
        }
        prop_assert!(graph.store_by_ssn(0).is_none());
        prop_assert!(graph.store_by_ssn(stores + 1).is_none());
        for l in graph.loads() {
            prop_assert_eq!(graph.load_by_seq(l.seq), Some(l));
            for &ssn in &l.producers() {
                let s = graph.store_by_ssn(ssn);
                prop_assert!(s.is_some(), "producer ssn {} missing", ssn);
                prop_assert!(s.unwrap().seq < l.seq);
            }
        }
        for window in [1u64, 8, 64, 1 << 40] {
            let cs = graph.comm_stats(window);
            let want: u64 = graph.loads().iter().filter(|l| l.in_window(window)).count() as u64;
            prop_assert_eq!(cs.comm_loads, want);
            prop_assert!(cs.partial_comm <= cs.comm_loads);
            prop_assert!(cs.multi_source <= cs.comm_loads);
        }
    }
}
