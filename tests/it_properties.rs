//! Property-based tests: random programs and random store streams must
//! preserve the core invariants of the design.

use proptest::prelude::*;

use nosq_core::bypass::bypass_value;
use nosq_core::{simulate, SimConfig};
use nosq_isa::exec::{load_extend, store_memory_bits};
use nosq_isa::{Assembler, Cond, Extension, MemWidth, Program, Reg};
use nosq_trace::Tracer;
use nosq_uarch::{Ssbf, Ssn, Tssbf};

/// One step of a random straight-line memory/ALU program.
#[derive(Clone, Debug)]
enum Step {
    Alu {
        imm: i64,
    },
    Store {
        slot: u8,
        width: MemWidth,
    },
    Load {
        slot: u8,
        width: MemWidth,
        sign: bool,
    },
}

fn width_strategy() -> impl Strategy<Value = MemWidth> {
    prop_oneof![
        Just(MemWidth::B1),
        Just(MemWidth::B2),
        Just(MemWidth::B4),
        Just(MemWidth::B8),
    ]
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (any::<i32>()).prop_map(|imm| Step::Alu { imm: imm as i64 }),
        (0u8..8, width_strategy()).prop_map(|(slot, width)| Step::Store { slot, width }),
        (0u8..8, width_strategy(), any::<bool>()).prop_map(|(slot, width, sign)| Step::Load {
            slot,
            width,
            sign
        }),
    ]
}

/// Builds a loop over the random steps (several iterations so predictors
/// train and speculate).
fn build_program(steps: &[Step], iters: i64) -> Program {
    let mut asm = Assembler::new();
    let (base, v, t, i) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
    asm.li(base, 0x1000);
    asm.li(i, iters);
    let top = asm.label();
    asm.bind(top);
    for step in steps {
        match step {
            Step::Alu { imm } => asm.addi(v, v, *imm),
            Step::Store { slot, width } => {
                asm.store(v, base, 16 * *slot as i32, *width);
            }
            Step::Load { slot, width, sign } => {
                let ext = if *sign {
                    Extension::Sign
                } else {
                    Extension::Zero
                };
                asm.load(t, base, 16 * *slot as i32, *width, ext);
                asm.add(v, v, t);
            }
        }
    }
    asm.addi(i, i, -1);
    asm.branch(Cond::Gt, i, Reg::ZERO, top);
    asm.halt();
    asm.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every configuration commits exactly the functional trace:
    /// speculation never leaks into architectural state.
    #[test]
    fn all_configs_commit_the_functional_trace(
        steps in prop::collection::vec(step_strategy(), 1..14),
        iters in 5i64..40,
    ) {
        let program = build_program(&steps, iters);
        let budget = 50_000;
        let expected = Tracer::new(&program, budget).count() as u64;
        for (name, cfg) in [
            ("baseline", SimConfig::baseline_storesets(budget)),
            ("nosq-nd", SimConfig::nosq_no_delay(budget)),
            ("nosq-d", SimConfig::nosq(budget)),
            ("perfect", SimConfig::perfect_smb(budget)),
        ] {
            let r = simulate(&program, cfg);
            prop_assert_eq!(r.insts, expected, "{} diverged", name);
        }
    }

    /// The bypass transform exactly mimics the store→memory→load path for
    /// any single-source, fully-covering pair.
    #[test]
    fn bypass_value_matches_memory_path(
        data in any::<u64>(),
        store_width in width_strategy(),
        load_width in width_strategy(),
        shift in 0u8..8,
        sign in any::<bool>(),
    ) {
        let store_bytes = store_width.bytes();
        let load_bytes = load_width.bytes();
        prop_assume!(shift as u64 + load_bytes <= store_bytes); // full coverage
        let ext = if sign { Extension::Sign } else { Extension::Zero };

        // Memory path: store to address A, load from A + shift.
        let mut mem = nosq_isa::Memory::new();
        mem.write(0x100, store_bytes, store_memory_bits(data, store_width, false));
        let memory_value = load_extend(
            mem.read(0x100 + shift as u64, load_bytes),
            load_width,
            ext,
        );

        let bypassed = bypass_value(data, store_width, false, shift, load_width, ext);
        prop_assert_eq!(bypassed, memory_value);
    }

    /// The float32 conversion path agrees with memory too.
    #[test]
    fn bypass_value_matches_memory_path_float(data in any::<u64>()) {
        let mut mem = nosq_isa::Memory::new();
        mem.write(0x100, 4, store_memory_bits(data, MemWidth::B4, true));
        let memory_value = load_extend(mem.read(0x100, 4), MemWidth::B4, Extension::Float32);
        let bypassed = bypass_value(data, MemWidth::B4, true, 0, MemWidth::B4, Extension::Float32);
        prop_assert_eq!(bypassed, memory_value);
    }

    /// SVW safety: the untagged SSBF's recorded SSN is always an upper
    /// bound on the true youngest conflicting store, so the inequality
    /// test never wrongly skips a re-execution.
    #[test]
    fn ssbf_is_conservative(
        stores in prop::collection::vec((0u64..64, 1u64..9), 1..120),
        probe in 0u64..64,
    ) {
        let mut filter = Ssbf::new(16);
        let mut oracle_youngest = Ssn::NONE;
        for (i, (slot, width)) in stores.iter().enumerate() {
            let ssn = Ssn(i as u64 + 1);
            let addr = slot * 8;
            let width = (*width).min(8) as u8;
            filter.record_store(addr, width, ssn);
            // Overlap with the 8-byte probe window?
            if addr < (probe * 8) + 8 && addr + width as u64 > probe * 8 {
                oracle_youngest = oracle_youngest.max(ssn);
            }
        }
        prop_assert!(filter.youngest(probe * 8, 8) >= oracle_youngest);
    }

    /// T-SSBF safety: whenever the tagged filter says "skip" for the
    /// inequality test, the oracle agrees there was no younger
    /// conflicting store.
    #[test]
    fn tssbf_inequality_never_wrongly_skips(
        stores in prop::collection::vec((0u64..32, 1u64..9), 1..200),
        probe in 0u64..32,
        nvul_raw in 0u64..200,
    ) {
        let mut filter = Tssbf::new(8, 2); // tiny filter: lots of eviction
        let mut oracle_youngest = Ssn::NONE;
        for (i, (slot, width)) in stores.iter().enumerate() {
            let ssn = Ssn(i as u64 + 1);
            let addr = slot * 8;
            let width = (*width).min(8) as u8;
            filter.record_store(addr, width, ssn);
            if addr < (probe * 8) + 8 && addr + width as u64 > probe * 8 {
                oracle_youngest = oracle_youngest.max(ssn);
            }
        }
        let nvul = Ssn(nvul_raw);
        let vulnerable = oracle_youngest > nvul;
        let filter_says_reexec = filter.must_reexecute_inequality(probe * 8, 8, nvul);
        // Safety: truly vulnerable ⇒ the filter must demand re-execution.
        if vulnerable {
            prop_assert!(filter_says_reexec, "filter skipped a vulnerable load");
        }
    }
}
