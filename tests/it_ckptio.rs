//! Durability of the on-disk checkpoint encoding.
//!
//! Three properties, each load-bearing for crash recovery:
//!
//! 1. **Round trip**: serializing a mid-run [`SimCheckpoint`] and
//!    decoding it back resumes bit-identically — the decoded snapshot's
//!    completed run equals the uninterrupted run, and re-encoding it
//!    reproduces the original bytes (the encoding is canonical, so byte
//!    equality is state equality).
//! 2. **Truncation**: *every* proper prefix of a serialized checkpoint
//!    is rejected with an error — no prefix decodes, none panics.
//! 3. **Corruption**: flipping bits anywhere in the buffer is rejected
//!    cleanly. Exhaustive at the envelope layer (every byte of a small
//!    sealed payload, three flip patterns each — `crates/wire` proves
//!    the checksum catches all single-byte substitutions), randomized
//!    plus strided at full checkpoint scale.

use proptest::prelude::*;

use nosq_core::{CkptError, SimConfig, Simulator, StopCondition};
use nosq_trace::{synthesize, Profile, TraceBuffer};

const BUDGET: u64 = 4_000;

fn config(idx: usize) -> SimConfig {
    match idx {
        0 => SimConfig::nosq(BUDGET),
        1 => SimConfig::nosq_no_delay(BUDGET),
        2 => SimConfig::baseline_storesets(BUDGET),
        3 => SimConfig::baseline_perfect(BUDGET),
        _ => SimConfig::perfect_smb(BUDGET),
    }
}

/// The shared workload every test snapshots.
fn workload() -> (nosq_isa::Program, TraceBuffer) {
    let profile = Profile::by_name("g721.e").expect("profile exists");
    let program = synthesize(profile, nosq_bench::SEED);
    let trace = TraceBuffer::record(&program, BUDGET);
    (program, trace)
}

/// A mid-run checkpoint of the workload under `cfg`.
fn take_ckpt(
    program: &nosq_isa::Program,
    trace: &TraceBuffer,
    cfg: &SimConfig,
    snapshot_cycle: u64,
) -> nosq_core::SimCheckpoint {
    let mut sim = Simulator::replay(program, cfg.clone(), trace);
    sim.run_until(StopCondition::Cycles(snapshot_cycle));
    sim.checkpoint()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Serialize → decode → resume equals the uninterrupted run, and
    /// the decoded snapshot re-encodes to the identical bytes.
    #[test]
    fn serialized_checkpoint_resumes_bit_identically(
        snapshot_cycle in 1u64..5_000,
        cfg_idx in 0usize..5,
    ) {
        let (program, trace) = workload();
        let cfg = config(cfg_idx);
        let ckpt = take_ckpt(&program, &trace, &cfg, snapshot_cycle);
        let uninterrupted = Simulator::replay(&program, cfg.clone(), &trace).run();

        let bytes = ckpt.to_bytes();
        let decoded = nosq_core::SimCheckpoint::from_bytes(&bytes, &cfg)
            .expect("pristine checkpoint decodes");
        prop_assert_eq!(
            decoded.to_bytes(),
            bytes,
            "re-encoding a decoded checkpoint must be canonical"
        );

        let resumed = Simulator::resume(&program, &trace, &decoded).run();
        prop_assert_eq!(
            resumed, uninterrupted,
            "resume from decoded bytes diverged (snapshot at cycle {})",
            snapshot_cycle
        );
    }

    /// Any single corrupted byte anywhere in the serialized checkpoint
    /// is rejected with an error — never a panic, never a bogus decode.
    #[test]
    fn random_corruption_is_rejected(
        snapshot_cycle in 1u64..5_000,
        pos_seed in any::<u64>(),
        flip_raw in 1u64..256,
    ) {
        let flip = flip_raw as u8;
        let (program, trace) = workload();
        let cfg = config(0);
        let ckpt = take_ckpt(&program, &trace, &cfg, snapshot_cycle);
        let mut bytes = ckpt.to_bytes();
        let pos = (pos_seed as usize) % bytes.len();
        bytes[pos] ^= flip;
        prop_assert!(
            nosq_core::SimCheckpoint::from_bytes(&bytes, &cfg).is_err(),
            "corruption at byte {pos} (xor {flip:#04x}) must be rejected"
        );
    }
}

/// Every proper prefix of a serialized checkpoint fails to decode.
/// (The envelope stores the exact payload length, so each wrong length
/// is rejected in O(1) — the full sweep is linear.)
#[test]
fn every_truncation_is_rejected() {
    let (program, trace) = workload();
    let cfg = config(0);
    let bytes = take_ckpt(&program, &trace, &cfg, 700).to_bytes();
    for len in 0..bytes.len() {
        assert!(
            nosq_core::SimCheckpoint::from_bytes(&bytes[..len], &cfg).is_err(),
            "truncation to {len} of {} bytes must be rejected",
            bytes.len()
        );
    }
}

/// Trailing garbage after a valid checkpoint is rejected too.
#[test]
fn trailing_bytes_are_rejected() {
    let (program, trace) = workload();
    let cfg = config(0);
    let mut bytes = take_ckpt(&program, &trace, &cfg, 700).to_bytes();
    bytes.push(0);
    assert!(nosq_core::SimCheckpoint::from_bytes(&bytes, &cfg).is_err());
}

/// A strided single-byte corruption sweep over a real full-size
/// checkpoint (a prime stride so successive sweeps drift across every
/// envelope region: magic, version, fingerprint, length, payload,
/// checksum).
#[test]
fn strided_corruption_sweep_is_rejected() {
    let (program, trace) = workload();
    let cfg = config(1);
    let bytes = take_ckpt(&program, &trace, &cfg, 900).to_bytes();
    for start in 0..7 {
        for pos in (start..bytes.len()).step_by(997) {
            for flip in [0x01u8, 0x80, 0xff] {
                let mut damaged = bytes.clone();
                damaged[pos] ^= flip;
                assert!(
                    nosq_core::SimCheckpoint::from_bytes(&damaged, &cfg).is_err(),
                    "corruption at byte {pos} (xor {flip:#04x}) must be rejected"
                );
            }
        }
    }
}

/// A checkpoint refuses to open under any configuration other than the
/// one it was taken with, and reports the mismatch as a fingerprint
/// error (not a checksum failure — the bytes themselves are pristine).
#[test]
fn config_mismatch_is_a_fingerprint_error() {
    let (program, trace) = workload();
    let cfg = config(0);
    let bytes = take_ckpt(&program, &trace, &cfg, 700).to_bytes();
    for other_idx in 1..5 {
        let other = config(other_idx);
        let err = nosq_core::SimCheckpoint::from_bytes(&bytes, &other)
            .err()
            .expect("config mismatch must fail to decode");
        match err {
            CkptError::Envelope(nosq_wire::envelope::EnvelopeError::Fingerprint {
                sealed,
                expected,
            }) => {
                assert_eq!(sealed, nosq_core::SimCheckpoint::config_fingerprint(&cfg));
                assert_eq!(
                    expected,
                    nosq_core::SimCheckpoint::config_fingerprint(&other)
                );
            }
            other_err => panic!("expected a fingerprint error, got {other_err:?}"),
        }
    }
}
