//! Determinism regression: the whole evaluation pipeline (Table 5,
//! Figures 2-5) leans on `nosq_bench::SEED`-based reproducibility —
//! synthesizing the same profile with the same seed and simulating it
//! twice must yield byte-identical results. A nondeterministic
//! simulator would silently invalidate every paper comparison.

use nosq_core::{simulate, LaneSet, SimArena, SimConfig, Simulator, StopCondition};
use nosq_trace::{synthesize, Profile, TraceBuffer};

/// Two independent `synthesize` + `simulate` runs of the same
/// (profile, seed, config) triple must agree on every metric.
#[test]
fn same_profile_and_seed_give_identical_results() {
    let budget = 20_000;
    for name in ["gzip", "gsm.e", "applu"] {
        let profile = Profile::by_name(name).expect("profile exists");
        for cfg in [
            SimConfig::baseline_storesets(budget),
            SimConfig::nosq(budget),
            SimConfig::nosq_no_delay(budget),
        ] {
            let a = simulate(&synthesize(profile, nosq_bench::SEED), cfg.clone());
            let b = simulate(&synthesize(profile, nosq_bench::SEED), cfg);
            assert_eq!(a, b, "{name}: nondeterministic SimReport");
        }
    }
}

/// Different seeds must actually vary the workload (guards against a
/// synthesizer that ignores its seed, which would make the determinism
/// check above vacuous).
#[test]
fn different_seeds_give_different_programs() {
    let profile = Profile::by_name("gzip").expect("profile exists");
    let a = simulate(&synthesize(profile, 1), SimConfig::nosq(20_000));
    let b = simulate(&synthesize(profile, 2), SimConfig::nosq(20_000));
    assert_ne!(
        (a.cycles, a.memory.bypassed_loads),
        (b.cycles, b.memory.bypassed_loads),
        "seed has no effect on the synthesized workload"
    );
}

/// Session equivalence: chopping one simulation into an arbitrary
/// interleaving of `step()` and `run_until()` segments must reproduce
/// the one-shot `simulate()` report **bit for bit** — the incremental
/// session API is a pure re-packaging of the same cycle loop, never a
/// different machine.
#[test]
fn stepped_execution_matches_one_shot_bit_for_bit() {
    let budget = 20_000;
    let profile = Profile::by_name("g721.e").expect("profile exists");
    let program = synthesize(profile, nosq_bench::SEED);
    for cfg in [
        SimConfig::baseline_storesets(budget),
        SimConfig::nosq(budget),
        SimConfig::nosq_no_delay(budget),
        SimConfig::perfect_smb(budget),
    ] {
        let one_shot = simulate(&program, cfg.clone());

        let mut sim = Simulator::new(&program, cfg);
        // Mix every granularity the API offers.
        for _ in 0..257 {
            sim.step();
        }
        let here = sim.stats().cycles;
        sim.run_until(StopCondition::Cycles(here + 1_000));
        sim.run_until(StopCondition::Insts(5_000));
        sim.run_until(StopCondition::predicate(|s| s.memory.loads >= 1_000));
        sim.run_until(StopCondition::Done);
        assert!(sim.is_done());
        let stepped = sim.finish();

        assert_eq!(one_shot, stepped, "stepped session diverged");
    }
}

/// Already-satisfied stop conditions must not advance the pipeline.
#[test]
fn satisfied_stop_conditions_do_not_step() {
    let profile = Profile::by_name("gzip").expect("profile exists");
    let program = synthesize(profile, nosq_bench::SEED);
    let mut sim = Simulator::new(&program, SimConfig::nosq(10_000));
    sim.run_until(StopCondition::Cycles(500));
    let at_500 = *sim.stats();
    sim.run_until(StopCondition::Cycles(400)); // already past
    sim.run_until(StopCondition::Insts(at_500.insts)); // already met
    assert_eq!(
        *sim.stats(),
        at_500,
        "satisfied conditions advanced the clock"
    );
}

/// Golden squash-heavy regression: these exact counters were produced
/// by the seed simulator (PR 3, commit `dcdaf4b`) *before* the
/// arena/ring/paged-map datapath refactor, for runs chosen to exercise
/// recovery heavily (ordering squashes in the StoreSets baseline,
/// bypass-mispredict squashes in no-delay NoSQ). The refactor — and in
/// particular the removal of the per-squash `machine.clone()` and the
/// event-driven issue scheduler — must be invisible in every one of
/// them.
#[test]
fn squash_heavy_runs_match_seed_golden_counters() {
    // (profile, nosq_no_delay?, cycles, ordering_squashes,
    //  bypass_mispredicts, branch_mispredicts, reexec_filtered,
    //  backend_dcache_reads, bypassed_loads, sq_forwards)
    type GoldenRow = (&'static str, bool, u64, u64, u64, u64, u64, u64, u64, u64);
    #[rustfmt::skip]
    let golden: [GoldenRow; 6] = [
        ("gzip",   false, 43446, 37, 0,  162, 3017, 191, 0,   267),
        ("gzip",   true,  43453, 0,  6,  109, 3053, 155, 295, 0),
        ("gcc",    false, 44460, 39, 0,  174, 2979, 95,  0,   139),
        ("gcc",    true,  45877, 0,  6,  118, 3013, 61,  177, 0),
        ("vortex", false, 41868, 32, 0,  154, 2808, 90,  0,   395),
        ("vortex", true,  42936, 0,  17, 130, 2718, 180, 316, 0),
    ];
    let mut arena = SimArena::new();
    for (name, nosq, cycles, ord, byp, br, filt, reads, bypassed, fwd) in golden {
        let profile = Profile::by_name(name).expect("profile exists");
        let program = synthesize(profile, nosq_bench::SEED);
        let cfg = if nosq {
            SimConfig::nosq_no_delay(40_000)
        } else {
            SimConfig::baseline_storesets(40_000)
        };
        // All three construction paths must reproduce the seed run.
        let trace = TraceBuffer::record(&program, 40_000);
        for (path, r) in [
            ("simulate", simulate(&program, cfg.clone())),
            (
                "with_arena",
                Simulator::with_arena(&program, cfg.clone(), &mut arena).run(),
            ),
            (
                "replay_with_arena",
                Simulator::replay_with_arena(&program, cfg.clone(), &trace, &mut arena).run(),
            ),
        ] {
            let got = (
                r.cycles,
                r.verification.ordering_squashes,
                r.verification.bypass_mispredicts,
                r.frontend.branch_mispredicts,
                r.verification.reexec_filtered,
                r.verification.backend_dcache_reads,
                r.memory.bypassed_loads,
                r.memory.sq_forwards,
            );
            assert_eq!(
                got,
                (cycles, ord, byp, br, filt, reads, bypassed, fwd),
                "{name} nosq={nosq} via {path} diverged from the seed simulator"
            );
            assert_eq!(r.insts, 40_000, "{name} committed a different count");
        }
    }
}

/// Fused lockstep replay is invisible in the reports: every lane of a
/// [`LaneSet`] over all five presets must be **byte-identical** to its
/// solo `Simulator::replay` run, on the same squash-heavy workloads the
/// golden-counter test pins (so the solo side is itself anchored to the
/// seed simulator). This covers everything the fused path changes —
/// trace-indexed instruction storage, lockstep stride scheduling, and
/// batch idle-cycle skipping — with and without a shared arena.
#[test]
fn fused_replay_lanes_match_solo_replay_bit_for_bit() {
    let budget = 40_000;
    let configs = [
        SimConfig::baseline_perfect(budget),
        SimConfig::baseline_storesets(budget),
        SimConfig::nosq_no_delay(budget),
        SimConfig::nosq(budget),
        SimConfig::perfect_smb(budget),
    ];
    let mut arena = SimArena::new();
    for name in ["gzip", "gcc", "vortex"] {
        let profile = Profile::by_name(name).expect("profile exists");
        let program = synthesize(profile, nosq_bench::SEED);
        let trace = TraceBuffer::record(&program, budget);
        let solo: Vec<_> = configs
            .iter()
            .map(|cfg| Simulator::replay(&program, cfg.clone(), &trace).run())
            .collect();
        let fused = LaneSet::fused_replay(&program, &configs, &trace).run();
        let fused_arena =
            LaneSet::fused_replay_with_arena(&program, &configs, &trace, &mut arena).run();
        for (lane, solo_report) in solo.iter().enumerate() {
            assert_eq!(
                &fused[lane], solo_report,
                "{name}: fused lane {lane} diverged from solo replay"
            );
            assert_eq!(
                &fused_arena[lane], solo_report,
                "{name}: arena-fused lane {lane} diverged from solo replay"
            );
        }
    }
}

/// The bench harness itself (workload + run) is reproducible.
#[test]
fn bench_harness_run_is_reproducible() {
    let profile = Profile::by_name("epic.e")
        .or_else(|| Profile::by_name("gzip"))
        .expect("profile exists");
    let a = nosq_bench::run(profile, SimConfig::nosq(10_000));
    let b = nosq_bench::run(profile, SimConfig::nosq(10_000));
    assert_eq!(a, b, "nosq_bench::run is nondeterministic");
}
