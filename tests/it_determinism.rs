//! Determinism regression: the whole evaluation pipeline (Table 5,
//! Figures 2-5) leans on `nosq_bench::SEED`-based reproducibility —
//! synthesizing the same profile with the same seed and simulating it
//! twice must yield byte-identical results. A nondeterministic
//! simulator would silently invalidate every paper comparison.

use nosq_core::{simulate, SimConfig};
use nosq_trace::{synthesize, Profile};

/// Two independent `synthesize` + `simulate` runs of the same
/// (profile, seed, config) triple must agree on every metric.
#[test]
fn same_profile_and_seed_give_identical_results() {
    let budget = 20_000;
    for name in ["gzip", "gsm.e", "applu"] {
        let profile = Profile::by_name(name).expect("profile exists");
        for cfg in [
            SimConfig::baseline_storesets(budget),
            SimConfig::nosq(budget),
            SimConfig::nosq_no_delay(budget),
        ] {
            let a = simulate(&synthesize(profile, nosq_bench::SEED), cfg.clone());
            let b = simulate(&synthesize(profile, nosq_bench::SEED), cfg);
            assert_eq!(a, b, "{name}: nondeterministic SimResult");
        }
    }
}

/// Different seeds must actually vary the workload (guards against a
/// synthesizer that ignores its seed, which would make the determinism
/// check above vacuous).
#[test]
fn different_seeds_give_different_programs() {
    let profile = Profile::by_name("gzip").expect("profile exists");
    let a = simulate(&synthesize(profile, 1), SimConfig::nosq(20_000));
    let b = simulate(&synthesize(profile, 2), SimConfig::nosq(20_000));
    assert_ne!(
        (a.cycles, a.bypassed_loads),
        (b.cycles, b.bypassed_loads),
        "seed has no effect on the synthesized workload"
    );
}

/// The bench harness itself (workload + run) is reproducible.
#[test]
fn bench_harness_run_is_reproducible() {
    let profile = Profile::by_name("epic.e")
        .or_else(|| Profile::by_name("gzip"))
        .expect("profile exists");
    let a = nosq_bench::run(profile, SimConfig::nosq(10_000));
    let b = nosq_bench::run(profile, SimConfig::nosq(10_000));
    assert_eq!(a, b, "nosq_bench::run is nondeterministic");
}
