//! Property suite for the paged last-writer map: the tracer's
//! dependence ground truth must be *exactly* what a naive per-byte
//! model computes, no matter how stores overlap, straddle pages, or
//! scatter across the address space. The paged map exists purely for
//! throughput; any observable difference from the naive model would
//! silently corrupt every simulated dependence annotation.

use std::collections::BTreeMap;

use proptest::prelude::*;

use nosq_trace::{ByteWriter, LastWriterMap, LoadScan};

/// The reference model: one `BTreeMap` entry per byte address —
/// structurally the original tracer implementation.
#[derive(Default)]
struct NaiveModel {
    bytes: BTreeMap<u64, ByteWriter>,
}

impl NaiveModel {
    fn record_store(&mut self, addr: u64, width: u64, writer: ByteWriter) {
        for i in 0..width {
            self.bytes.insert(addr.wrapping_add(i), writer);
        }
    }

    fn scan(&self, addr: u64, width: u64) -> LoadScan {
        let mut youngest: Option<ByteWriter> = None;
        let mut all_same = true;
        let mut any_missing = false;
        for i in 0..width {
            match self.bytes.get(&addr.wrapping_add(i)) {
                Some(w) => match youngest {
                    None => youngest = Some(*w),
                    Some(y) if w.store_seq != y.store_seq => {
                        all_same = false;
                        if w.store_seq > y.store_seq {
                            youngest = Some(*w);
                        }
                    }
                    Some(_) => {}
                },
                None => any_missing = true,
            }
        }
        LoadScan {
            youngest,
            all_same,
            any_missing,
        }
    }
}

/// One generated memory operation: `store == true` writes, else the
/// address range is scanned as a load.
#[derive(Clone, Debug)]
struct Op {
    store: bool,
    addr: u64,
    width: u64,
}

/// Address space designed to stress the paged layout: a dense cluster
/// (heavy overlap), the 1 KiB page boundary the map pages on, the 4 KiB
/// architectural page boundary, far-apart pages (index growth /
/// collisions), and the wrap-around end of the address space.
fn addr_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        (0u64..64).prop_map(|o| 0x1000 + o),           // dense cluster
        (0u64..16).prop_map(|o| 0x13f8 + o),           // map-page straddle
        (0u64..16).prop_map(|o| 0x1ff8 + o),           // 4 KiB straddle
        (0u64..64).prop_map(|o| 0x9_0000 + o * 0x400), // one byte per map page
        (0u64..8).prop_map(|o| u64::MAX - 7 + o),      // address wrap
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (
        any::<bool>(),
        addr_strategy(),
        prop_oneof![Just(1u64), Just(2u64), Just(4u64), Just(8u64)],
    )
        .prop_map(|(store, addr, width)| Op { store, addr, width })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary interleavings of overlapping partial stores and loads:
    /// the paged map and the naive per-byte model agree on the youngest
    /// writer (identity, address, width, float32 flag — hence shift)
    /// and on the coverage facts, for every load.
    #[test]
    fn paged_map_matches_naive_model(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut paged = LastWriterMap::new();
        let mut naive = NaiveModel::default();
        let mut stores = 0u64;
        for (seq, op) in ops.iter().enumerate() {
            if op.store {
                let writer = ByteWriter {
                    store_seq: seq as u64,
                    store_index: stores,
                    store_addr: op.addr,
                    store_width: op.width as u8,
                    store_float32: stores.is_multiple_of(3),
                };
                paged.record_store(op.addr, op.width, writer);
                naive.record_store(op.addr, op.width, writer);
                stores += 1;
            } else {
                let got = paged.scan(op.addr, op.width);
                let want = naive.scan(op.addr, op.width);
                prop_assert_eq!(got, want, "scan({:#x}, {}) diverged", op.addr, op.width);
            }
        }
        // Sweep the touched regions once more with every width.
        for op in &ops {
            for width in [1u64, 2, 4, 8] {
                let got = paged.scan(op.addr, width);
                let want = naive.scan(op.addr, width);
                prop_assert_eq!(got, want, "final scan({:#x}, {})", op.addr, width);
            }
        }
    }

    /// `reset` truly empties the map: after an epoch bump a fresh
    /// store/load history must behave exactly like a brand-new map,
    /// even though the old pages (and their stale epoch stamps) are
    /// recycled in place.
    #[test]
    fn reset_is_equivalent_to_fresh(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut reused = LastWriterMap::new();
        // Pollute with everything, twice, then reset.
        for op in &ops {
            let writer = ByteWriter {
                store_seq: 999,
                store_index: 999,
                store_addr: op.addr,
                store_width: op.width as u8,
                store_float32: true,
            };
            reused.record_store(op.addr, op.width, writer);
        }
        reused.reset();

        let mut fresh = LastWriterMap::new();
        let mut naive = NaiveModel::default();
        let mut stores = 0u64;
        for op in &ops {
            if op.store {
                let writer = ByteWriter {
                    store_seq: stores,
                    store_index: stores,
                    store_addr: op.addr,
                    store_width: op.width as u8,
                    store_float32: false,
                };
                reused.record_store(op.addr, op.width, writer);
                fresh.record_store(op.addr, op.width, writer);
                naive.record_store(op.addr, op.width, writer);
                stores += 1;
            } else {
                let scan = reused.scan(op.addr, op.width);
                prop_assert_eq!(scan, fresh.scan(op.addr, op.width));
                prop_assert_eq!(scan, naive.scan(op.addr, op.width));
            }
        }
    }
}
