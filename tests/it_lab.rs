//! Integration suite for the `nosq-lab` campaign engine: executor
//! determinism across thread counts, spec-driven campaigns end to end,
//! and the engine's interaction with `SimConfig` validation.

use nosq_lab::{artifacts, parallel_map_indexed, run_campaign, Campaign, Preset, RunOptions};

/// A small but non-trivial campaign: 3 presets × 8 profiles across all
/// three suites, with a baseline for the speedup artifacts.
fn campaign() -> Campaign {
    Campaign::builder("det")
        .preset(Preset::BaselineStoresets)
        .preset(Preset::NosqNoDelay)
        .preset(Preset::Nosq)
        .profiles([
            "gzip", "gsm.e", "applu", "gcc", "mesa.o", "vortex", "apsi", "epic.e",
        ])
        .max_insts(1_500)
        .baseline("baseline-storesets")
        .build()
        .expect("valid campaign")
}

/// The executor's headline contract: the aggregated artifacts are
/// byte-identical at 1, 2, and 8 threads.
#[test]
fn artifacts_are_byte_identical_across_thread_counts() {
    let campaign = campaign();
    let runs: Vec<_> = [1usize, 2, 8]
        .into_iter()
        .map(|threads| {
            let opts = RunOptions {
                threads,
                ..RunOptions::default()
            };
            (threads, artifacts(&run_campaign(&campaign, &opts)))
        })
        .collect();
    let (_, reference) = &runs[0];
    assert_eq!(reference.len(), 4, "matrix csv/json, summary, speedup");
    for (threads, arts) in &runs[1..] {
        assert_eq!(arts, reference, "artifacts diverged at {threads} threads");
    }
}

/// Different chunk sizes change observation boundaries, never results.
#[test]
fn chunk_size_does_not_change_artifacts() {
    let campaign = campaign();
    let at = |chunk_cycles: u64| {
        let opts = RunOptions {
            threads: 2,
            chunk_cycles,
            ..RunOptions::default()
        };
        artifacts(&run_campaign(&campaign, &opts))
    };
    assert_eq!(at(512), at(1 << 20));
}

/// A spec-file campaign runs end to end and its artifacts parse with
/// the lab's own JSON parser.
#[test]
fn spec_campaign_runs_end_to_end() {
    let spec = "
name = spec-e2e
configs = nosq, assoc-sq
profiles = gzip, applu
max_insts = 1200
baseline = assoc-sq
";
    let campaign = Campaign::from_spec(spec).unwrap();
    let result = run_campaign(&campaign, &RunOptions::default());
    assert_eq!(result.reports.len(), 4);
    for artifact in artifacts(&result) {
        if artifact.file_name.ends_with(".json") {
            nosq_lab::json::parse(&artifact.contents)
                .unwrap_or_else(|e| panic!("{}: {e}", artifact.file_name));
        }
        assert!(!artifact.contents.is_empty());
    }
    // The engine-run reports match direct simulation of the same jobs.
    let program = nosq_trace::synthesize(campaign.profiles[0], campaign.seed);
    let direct = nosq_core::simulate(&program, campaign.configs[0].config.clone());
    assert_eq!(
        &direct,
        result.report(0, 0),
        "engine diverged from simulate()"
    );
}

/// Campaign construction surfaces `SimConfig` validation errors
/// (`try_build` satellite) instead of panicking mid-run.
#[test]
fn invalid_grid_points_are_rejected_at_build_time() {
    let err = Campaign::builder("bad")
        .preset(Preset::Nosq)
        .capacity(1000) // 500 entries/table: non-power-of-two sets
        .profiles(["gzip"])
        .max_insts(100)
        .build()
        .unwrap_err();
    assert!(err.msg.contains("power of two"), "{err}");
}

/// The generic parallel map (now backing the bench crate's
/// `parallel_over_profiles`) keeps index order under heavy
/// oversubscription.
#[test]
fn parallel_map_survives_oversubscription() {
    let out = parallel_map_indexed(257, 16, |i| i as u64 * 3);
    assert_eq!(out, (0..257).map(|i| i as u64 * 3).collect::<Vec<_>>());
}

/// `parallel_over_profiles` (bench crate) and the engine agree — the
/// migration kept the bench harness's semantics.
#[test]
fn bench_parallel_map_matches_engine_order() {
    let profiles = nosq_bench::all_profiles();
    let names = nosq_bench::parallel_over_profiles(&profiles, |p| p.name);
    let expected: Vec<_> = profiles.iter().map(|p| p.name).collect();
    assert_eq!(names, expected);
}
