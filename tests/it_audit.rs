//! End-to-end audit acceptance: the dependence-oracle auditor must
//! prove every cell of the profile × NoSQ-preset grid violation-free,
//! and must *fail* the grid when fault injection deliberately breaks
//! the bypass predictor behind the SVW filter's back. Together the two
//! halves show the auditor has discriminating power — silence means
//! "proven right", not "looked away".

use nosq_audit::{audit_config, AuditRule, DependenceGraph};
use nosq_core::{FaultPlan, LsuModel, SimConfig};
use nosq_lab::{audit_json, json, run_audit, AuditOptions, Preset};
use nosq_trace::{synthesize, Profile};

const PROFILES: [&str; 4] = ["gzip", "gcc", "applu", "gsm.e"];
const BUDGET: u64 = 30_000;

fn presets(max_insts: u64) -> [(&'static str, SimConfig); 3] {
    [
        ("nosq-nd", SimConfig::nosq_no_delay(max_insts)),
        ("nosq", SimConfig::nosq(max_insts)),
        ("perfect-smb", SimConfig::perfect_smb(max_insts)),
    ]
}

/// Every trace profile × every NoSQ preset commits with zero audit
/// diagnostics: all bypasses, squashes, filters, and aggregate counters
/// are consistent with the exact store→load dependence graph.
#[test]
fn all_profiles_and_nosq_presets_audit_clean() {
    for name in PROFILES {
        let profile = Profile::by_name(name).expect("built-in profile");
        let program = synthesize(profile, 42);
        let graph = DependenceGraph::from_program(&program, BUDGET);
        for (preset, cfg) in presets(BUDGET) {
            let (report, audit) = audit_config(&program, &graph, cfg);
            assert!(
                audit.is_clean(),
                "{name} × {preset}: {} violations, first: {}",
                audit.violations,
                audit
                    .diagnostics
                    .first()
                    .map(ToString::to_string)
                    .unwrap_or_default()
            );
            assert_eq!(audit.stats.loads, report.memory.loads, "{name} × {preset}");
            assert!(audit.stats.loads > 0, "{name} × {preset} audited no loads");
        }
    }
}

/// The baseline store-queue pipeline is auditable too (no bypasses, but
/// the value-integrity and aggregate rules still apply).
#[test]
fn baseline_audits_clean() {
    let program = synthesize(Profile::by_name("gzip").unwrap(), 42);
    let graph = DependenceGraph::from_program(&program, BUDGET);
    let (_report, audit) = audit_config(&program, &graph, SimConfig::baseline_storesets(BUDGET));
    assert!(audit.is_clean(), "{}", audit.to_json());
    assert_eq!(audit.stats.bypassed, 0);
}

/// `--break-predictor` corrupts every Nth bypass target *and* exempts
/// it from verification; the auditor must catch the wrong-value commits
/// as SVW-filter-unsoundness diagnostics with producer attribution.
#[test]
fn fault_injection_produces_diagnostics() {
    let program = synthesize(Profile::by_name("gzip").unwrap(), 42);
    let graph = DependenceGraph::from_program(&program, 50_000);
    let cfg = SimConfig::builder()
        .lsu(LsuModel::Nosq { delay: true })
        .max_insts(50_000)
        .faults(FaultPlan {
            break_predictor: Some(16),
        })
        .build();
    let (_report, audit) = audit_config(&program, &graph, cfg);
    assert!(!audit.is_clean(), "injected faults went unnoticed");
    assert!(audit.stats.injected > 0);
    for diag in &audit.diagnostics {
        assert_eq!(diag.rule, AuditRule::SvwFilterUnsound, "{diag}");
        assert!(
            diag.actual_ssn.is_some(),
            "{diag} lacks producer attribution"
        );
        assert_ne!(diag.expected_ssn, diag.actual_ssn, "{diag}");
    }
}

/// The same program without injection is clean under the identical
/// configuration — the diagnostics above are the injection's doing.
#[test]
fn injection_control_group_is_clean() {
    let program = synthesize(Profile::by_name("gzip").unwrap(), 42);
    let graph = DependenceGraph::from_program(&program, 50_000);
    let (_report, audit) = audit_config(&program, &graph, SimConfig::nosq(50_000));
    assert!(audit.is_clean(), "{}", audit.to_json());
}

/// The lab grid runner: cell layout, totals, and a machine-readable
/// `audit.json` that the workspace's own JSON parser accepts.
#[test]
fn lab_grid_runs_and_serializes() {
    let opts = AuditOptions {
        profiles: vec![
            Profile::by_name("gzip").unwrap(),
            Profile::by_name("gsm.e").unwrap(),
        ],
        presets: vec![Preset::NosqNoDelay, Preset::PerfectSmb],
        max_insts: 10_000,
        threads: 2,
        ..AuditOptions::default()
    };
    let result = run_audit(&opts);
    assert_eq!(result.cells.len(), 4);
    assert_eq!(result.total_violations(), 0);

    let text = audit_json(&result);
    let parsed = json::parse(&text).expect("audit.json parses");
    assert_eq!(
        parsed.get("total_violations").and_then(|v| v.as_u64()),
        Some(0)
    );
    let cells = parsed
        .get("cells")
        .and_then(|v| v.as_array())
        .expect("cells array");
    assert_eq!(cells.len(), 4);
}
