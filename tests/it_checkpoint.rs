//! Checkpoint round-trip property: snapshotting a replay session at an
//! arbitrary cycle, restoring it into a fresh simulator (with or
//! without a fresh arena), and running to completion must reproduce the
//! uninterrupted run's [`SimReport`] **bit for bit** — the invariant
//! mid-campaign durability (ROADMAP: resumable jobs) rests on.
//!
//! The (vendored, deterministic) proptest stand-in picks the snapshot
//! cycle and configuration; the original session *keeps running* after
//! the snapshot, so the test also proves `checkpoint()` does not
//! perturb the session it captures.

use proptest::prelude::*;

use nosq_core::{SimArena, SimConfig, Simulator, StopCondition};
use nosq_trace::{synthesize, Profile, TraceBuffer};

const BUDGET: u64 = 6_000;

fn config(idx: usize) -> SimConfig {
    match idx {
        0 => SimConfig::nosq(BUDGET),
        1 => SimConfig::nosq_no_delay(BUDGET),
        2 => SimConfig::baseline_storesets(BUDGET),
        3 => SimConfig::baseline_perfect(BUDGET),
        _ => SimConfig::perfect_smb(BUDGET),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Snapshot at a random cycle, restore, run to completion: the
    /// resumed report equals the uninterrupted one, and so does the
    /// report of the session the snapshot was taken from.
    #[test]
    fn checkpoint_roundtrip_is_bit_identical(
        snapshot_cycle in 1u64..9_000,
        cfg_idx in 0usize..5,
    ) {
        let profile = Profile::by_name("g721.e").expect("profile exists");
        let program = synthesize(profile, nosq_bench::SEED);
        let trace = TraceBuffer::record(&program, BUDGET);
        let cfg = config(cfg_idx);

        let uninterrupted = Simulator::replay(&program, cfg.clone(), &trace).run();

        let mut sim = Simulator::replay(&program, cfg, &trace);
        sim.run_until(StopCondition::Cycles(snapshot_cycle));
        let ckpt = sim.checkpoint();
        sim.run_until(StopCondition::Done);
        let original = sim.finish();
        prop_assert_eq!(
            original, uninterrupted,
            "taking a checkpoint perturbed the running session"
        );

        let resumed = Simulator::resume(&program, &trace, &ckpt).run();
        prop_assert_eq!(
            resumed, uninterrupted,
            "resumed run diverged (snapshot at cycle {})", snapshot_cycle
        );

        let mut arena = SimArena::new();
        let resumed_arena = Simulator::resume_with_arena(&program, &trace, &ckpt, &mut arena).run();
        prop_assert_eq!(
            resumed_arena, uninterrupted,
            "arena-resumed run diverged (snapshot at cycle {})", snapshot_cycle
        );
    }
}

/// A checkpoint taken after completion resumes as a completed session.
#[test]
fn checkpoint_of_finished_session_is_done() {
    let profile = Profile::by_name("gzip").expect("profile exists");
    let program = synthesize(profile, nosq_bench::SEED);
    let trace = TraceBuffer::record(&program, 2_000);
    let cfg = SimConfig::nosq(2_000);

    let mut sim = Simulator::replay(&program, cfg.clone(), &trace);
    sim.run_until(StopCondition::Done);
    let ckpt = sim.checkpoint();
    let expected = sim.finish();

    let resumed = Simulator::resume(&program, &trace, &ckpt);
    assert!(resumed.is_done());
    assert_eq!(resumed.run(), expected);
}
