//! Suite-wide smoke and calibration checks over all 47 benchmark
//! profiles: everything synthesizes, traces, simulates without deadlock,
//! and the communication calibration stays within coarse bands.

use nosq_core::{simulate, SimConfig};
use nosq_trace::{analyze_program, synthesize, Profile};

/// Every profile runs under NoSQ (the most speculative configuration)
/// without deadlocks or architectural divergence.
#[test]
fn every_profile_simulates_under_nosq() {
    for p in Profile::all() {
        let program = synthesize(p, 42);
        let r = simulate(&program, SimConfig::nosq(8_000));
        assert_eq!(r.insts, 8_000, "{}: committed {}", p.name, r.insts);
        assert!(r.ipc() > 0.02, "{}: ipc {:.3}", p.name, r.ipc());
    }
}

/// Every profile runs under the realistic baseline too.
#[test]
fn every_profile_simulates_under_baseline() {
    for p in Profile::all() {
        let program = synthesize(p, 42);
        let r = simulate(&program, SimConfig::baseline_storesets(8_000));
        assert_eq!(r.insts, 8_000, "{}: committed {}", p.name, r.insts);
    }
}

/// Communication calibration: measured in-window communication tracks
/// the Table-5 targets within coarse bands across the whole suite.
#[test]
fn communication_calibration_bands() {
    let mut worst: (f64, &str) = (0.0, "-");
    for p in Profile::all() {
        let program = synthesize(p, 42);
        let stats = analyze_program(&program, 120_000, 128);
        let err = (stats.comm_pct() - p.comm_pct).abs();
        if err > worst.0 {
            worst = (err, p.name);
        }
        assert!(
            err <= 8.0,
            "{}: comm {:.1}% vs target {:.1}%",
            p.name,
            stats.comm_pct(),
            p.comm_pct
        );
        assert!(
            (stats.partial_pct() - p.partial_pct).abs() <= 5.0,
            "{}: partial {:.1}% vs target {:.1}%",
            p.name,
            stats.partial_pct(),
            p.partial_pct
        );
    }
    println!(
        "worst communication calibration error: {:.2}% ({})",
        worst.0, worst.1
    );
}

/// Memory-bound personalities come out slower than compute-bound ones
/// (the IPC ordering knob works).
#[test]
fn ipc_ordering_follows_memory_intensity() {
    let fast = Profile::by_name("gsm.e").unwrap(); // paper IPC 3.41
    let slow = Profile::by_name("mcf").unwrap(); // paper IPC 0.22
    let f = simulate(&synthesize(fast, 42), SimConfig::baseline_perfect(30_000));
    let s = simulate(&synthesize(slow, 42), SimConfig::baseline_perfect(30_000));
    assert!(
        f.ipc() > 3.0 * s.ipc(),
        "expected a wide IPC gap: {} vs {}",
        f.ipc(),
        s.ipc()
    );
}

/// The float personalities actually use the sts/lds path (partial-word
/// float communication present where the profile calls for it).
#[test]
fn float_profiles_exercise_float_conversion() {
    let p = Profile::by_name("mesa.o").unwrap();
    let program = synthesize(p, 42);
    let r = simulate(&program, SimConfig::nosq(30_000));
    assert!(
        r.memory.shift_mask_uops > 0,
        "expected partial-word bypasses"
    );
}

/// Different seeds produce different programs but the same calibration.
#[test]
fn calibration_is_seed_stable() {
    let p = Profile::by_name("vortex").unwrap();
    let a = analyze_program(&synthesize(p, 1), 100_000, 128);
    let b = analyze_program(&synthesize(p, 2), 100_000, 128);
    assert!(
        (a.comm_pct() - b.comm_pct()).abs() < 4.0,
        "seed variance too high: {:.1} vs {:.1}",
        a.comm_pct(),
        b.comm_pct()
    );
}
