//! Property tests for the micro-architectural substrate: caches, TLBs,
//! RAS, and the bypassing-predictor tables against oracle models.

use proptest::prelude::*;
use std::collections::VecDeque;

use nosq_uarch::branch::ReturnAddressStack;
use nosq_uarch::{Cache, CacheConfig, Ssn, SsnCounters, StoreSets, Tlb};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A fully-associative LRU cache modelled as a VecDeque agrees with
    /// the set-associative implementation configured with one set.
    #[test]
    fn cache_matches_lru_oracle(addrs in prop::collection::vec(0u64..32, 1..200)) {
        let ways = 4;
        let cfg = CacheConfig {
            size_bytes: ways * 64,
            line_bytes: 64,
            ways,
            hit_latency: 1,
        };
        let mut cache = Cache::new(cfg);
        let mut oracle: VecDeque<u64> = VecDeque::new(); // front = LRU
        for a in addrs {
            let line = a; // one line per distinct address (addr < 32, line 64)
            let addr = line * 64;
            let hit = cache.access(addr);
            let oracle_hit = oracle.contains(&line);
            prop_assert_eq!(hit, oracle_hit, "line {}", line);
            if oracle_hit {
                oracle.retain(|l| *l != line);
            } else if oracle.len() == ways {
                oracle.pop_front();
            }
            oracle.push_back(line);
        }
    }

    /// TLB hits are a function of page residency under LRU, same oracle.
    #[test]
    fn tlb_matches_lru_oracle(pages in prop::collection::vec(0u64..16, 1..150)) {
        let mut tlb = Tlb::new(4, 4); // fully associative, 4 entries
        let mut oracle: VecDeque<u64> = VecDeque::new();
        for p in pages {
            let hit = tlb.access(p << 12);
            let oracle_hit = oracle.contains(&p);
            prop_assert_eq!(hit, oracle_hit, "page {}", p);
            if oracle_hit {
                oracle.retain(|q| *q != p);
            } else if oracle.len() == 4 {
                oracle.pop_front();
            }
            oracle.push_back(p);
        }
    }

    /// The RAS agrees with an unbounded stack as long as the nesting
    /// depth stays within capacity.
    #[test]
    fn ras_matches_stack_within_capacity(ops in prop::collection::vec(any::<bool>(), 1..100)) {
        let cap = 8;
        let mut ras = ReturnAddressStack::new(cap);
        let mut oracle: Vec<u64> = Vec::new();
        for (i, push) in ops.into_iter().enumerate() {
            if push {
                let addr = (i as u64 + 1) * 4;
                ras.push(addr);
                oracle.push(addr);
                if oracle.len() > cap {
                    oracle.remove(0); // hardware overwrote the oldest
                }
            } else if let Some(expected) = oracle.pop() {
                prop_assert_eq!(ras.pop(), Some(expected));
            } else {
                prop_assert_eq!(ras.pop(), None);
            }
        }
    }

    /// SSN counters: in-flight occupancy is always rename − commit, and
    /// rollback after arbitrary interleavings restores exact state.
    #[test]
    fn ssn_counter_invariants(ops in prop::collection::vec(0u8..3, 1..200)) {
        let mut c = SsnCounters::new(20);
        for op in ops {
            match op {
                0 => {
                    c.next_rename();
                }
                1 => {
                    if c.in_flight() > 0 {
                        c.commit_store();
                    }
                }
                _ => {
                    let target = Ssn(c.commit().0 + c.in_flight() / 2);
                    c.rollback_rename(target);
                }
            }
            prop_assert_eq!(c.in_flight(), c.rename().0 - c.commit().0);
            prop_assert!(c.commit() <= c.rename());
        }
    }

    /// StoreSets: a load never predicts a dependence on a store set it
    /// was never linked to, and predictions always name renamed stores.
    #[test]
    fn storesets_predictions_are_grounded(
        violations in prop::collection::vec((0u64..8, 0u64..8), 0..10),
        renames in prop::collection::vec(0u64..8, 1..50),
    ) {
        // PC layout chosen so load and store PCs occupy distinct SSIT
        // slots (the SSIT is untagged and shared, so colliding PCs *do*
        // alias in the real design — that is expected behaviour, just
        // not what this property measures).
        let mut s = StoreSets::new(4096);
        let mut linked_loads = std::collections::HashSet::new();
        for (load, store) in &violations {
            s.train_violation(load * 4, 0x1004 + store * 4);
            linked_loads.insert(*load);
        }
        let mut ssn = 0u64;
        for store in renames {
            ssn += 1;
            s.rename_store(0x1004 + store * 4, Ssn(ssn));
        }
        for load in 0u64..8 {
            let pred = s.lookup_load(load * 4);
            if !linked_loads.contains(&load) {
                prop_assert_eq!(pred, None, "unlinked load {} predicted", load);
            }
            if let Some(p) = pred {
                prop_assert!(p.0 >= 1 && p.0 <= ssn, "ssn {} out of range", p.0);
            }
        }
    }
}
