//! Per-stage action assertions from the paper's pipeline diagrams
//! (Tables 1-4), observed through the simulator's counters.

use nosq_core::{simulate, SimConfig};
use nosq_isa::{Assembler, Cond, Extension, MemWidth, Program, Reg};
use nosq_trace::{synthesize, Profile};

fn spill_loop(iters: i64) -> Program {
    let mut asm = Assembler::new();
    let (base, v, t, i) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
    asm.li(base, 0x1000);
    asm.li(i, iters);
    let top = asm.label();
    asm.bind(top);
    asm.addi(v, v, 3);
    asm.store(v, base, 0, MemWidth::B8);
    asm.load(t, base, 0, MemWidth::B8, Extension::Zero);
    asm.add(v, v, t);
    asm.addi(i, i, -1);
    asm.branch(Cond::Gt, i, Reg::ZERO, top);
    asm.halt();
    asm.finish()
}

/// Table 3: NoSQ bypassed loads do not access the data cache in the
/// out-of-order core — "nothing!" happens at their execute stage.
#[test]
fn table3_bypassed_loads_skip_ooo_cache_access() {
    let prog = spill_loop(2_000);
    let r = simulate(&prog, SimConfig::nosq(100_000));
    assert!(
        r.memory.bypassed_loads > 1_800,
        "bypassed {}",
        r.memory.bypassed_loads
    );
    // Every OOO read corresponds to a non-bypassed (or replayed) load.
    assert!(
        r.memory.ooo_dcache_reads < r.memory.loads - r.memory.bypassed_loads + 50,
        "ooo reads {} vs non-bypassed {}",
        r.memory.ooo_dcache_reads,
        r.memory.loads - r.memory.bypassed_loads
    );
}

/// Table 2/4: the SVW filter lets almost all verified loads commit
/// without re-executing, so most bypassed loads never touch the cache at
/// all ("commit without having accessed the cache even once").
#[test]
fn table4_svw_filters_reexecutions() {
    let prog = spill_loop(2_000);
    let r = simulate(&prog, SimConfig::nosq(100_000));
    assert!(
        r.verification.reexec_filtered > r.memory.loads * 9 / 10,
        "filtered {} of {}",
        r.verification.reexec_filtered,
        r.memory.loads
    );
    assert!(
        r.reexec_rate() < 0.05,
        "re-execution rate {}",
        r.reexec_rate()
    );
}

/// Table 1/2 baseline: loads forward from the store queue, and forwarded
/// loads set their vulnerability window to the forwarding store (no
/// re-execution needed). The store's data arrives late (a multiply
/// chain), so the load wakes while the store is executed but not yet
/// committed — the forwarding window.
#[test]
fn table1_baseline_forwards_from_store_queue() {
    // An older cache-missing load blocks commit each iteration, so the
    // store executes but stays in the store queue while the dependent
    // load wakes — the forwarding window.
    let mut asm = Assembler::new();
    let (base, wild, ptr, v, t, i) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
        Reg::int(6),
    );
    asm.li(base, 0x1000);
    asm.li(ptr, 0x4000_0000);
    asm.li(i, 800);
    let top = asm.label();
    asm.bind(top);
    asm.load(wild, ptr, 0, MemWidth::B8, Extension::Zero); // always misses
    asm.addi(ptr, ptr, 4096);
    asm.mov(v, ptr); // strictly increasing: stale reads are never correct
    asm.store(v, base, 0, MemWidth::B8);
    asm.load(t, base, 0, MemWidth::B8, Extension::Zero); // forwards
    asm.add(v, v, t);
    asm.addi(i, i, -1);
    asm.branch(Cond::Gt, i, Reg::ZERO, top);
    asm.halt();
    let prog = asm.finish();
    let r = simulate(&prog, SimConfig::baseline_perfect(100_000));
    assert!(
        r.memory.sq_forwards > 600,
        "forwards {}",
        r.memory.sq_forwards
    );
    assert_eq!(r.verification.ordering_squashes, 0);
    assert!(
        r.reexec_rate() < 0.05,
        "re-execution rate {}",
        r.reexec_rate()
    );
}

/// NoSQ dispatches stores without store-queue entries: a baseline run
/// can stall on SQ capacity, NoSQ never does.
#[test]
fn nosq_has_no_store_queue_capacity_stalls() {
    // Store burst: more in-flight stores than the 24-entry SQ.
    let mut asm = Assembler::new();
    let (base, v, i) = (Reg::int(1), Reg::int(2), Reg::int(3));
    asm.li(base, 0x1000);
    asm.li(i, 300);
    let top = asm.label();
    asm.bind(top);
    for s in 0..40 {
        asm.store(v, base, 8 * s, MemWidth::B8);
    }
    asm.addi(i, i, -1);
    asm.branch(Cond::Gt, i, Reg::ZERO, top);
    asm.halt();
    let prog = asm.finish();
    let base_r = simulate(&prog, SimConfig::baseline_perfect(100_000));
    let nosq_r = simulate(&prog, SimConfig::nosq(100_000));
    assert!(
        base_r.stalls.sq_dispatch_stalls > 0,
        "expected SQ capacity stalls in the baseline"
    );
    assert_eq!(nosq_r.stalls.sq_dispatch_stalls, 0);
    // Commit bandwidth (one store per cycle) bounds both designs here;
    // NoSQ must stay within its longer back-end drain of the baseline.
    assert!(
        nosq_r.cycles <= base_r.cycles + 32,
        "NoSQ should not be slower on a store burst: {} vs {}",
        nosq_r.cycles,
        base_r.cycles
    );
}

/// §3.4: SMB shares physical registers (DEF and bypassed load), so NoSQ
/// is usable with the same 160-register file.
#[test]
fn bypassing_does_not_increase_register_stalls() {
    let profile = Profile::by_name("mesa.o").unwrap();
    let program = synthesize(profile, 42);
    let base = simulate(&program, SimConfig::baseline_storesets(40_000));
    let nosq = simulate(&program, SimConfig::nosq(40_000));
    assert!(
        nosq.stalls.reg_dispatch_stalls <= base.stalls.reg_dispatch_stalls + 1_000,
        "nosq {} vs baseline {}",
        nosq.stalls.reg_dispatch_stalls,
        base.stalls.reg_dispatch_stalls
    );
}

/// §3.5: partial-word bypasses go through the injected shift & mask
/// instruction; full-word bypasses do not.
#[test]
fn shift_mask_only_for_partial_word() {
    let full = simulate(&spill_loop(1_000), SimConfig::nosq(100_000));
    assert_eq!(
        full.memory.shift_mask_uops, 0,
        "full-word bypass needs no uop"
    );

    let mut asm = Assembler::new();
    let (base, c, v, t, i) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
    );
    asm.li(base, 0x1000);
    asm.li(i, 1_000);
    let top = asm.label();
    asm.bind(top);
    asm.addi(c, c, 5);
    asm.shli(v, c, 32);
    asm.add(v, v, c);
    asm.store(v, base, 0, MemWidth::B8);
    asm.load(t, base, 4, MemWidth::B4, Extension::Zero);
    asm.add(c, c, t);
    asm.addi(i, i, -1);
    asm.branch(Cond::Gt, i, Reg::ZERO, top);
    asm.halt();
    let partial = simulate(&asm.finish(), SimConfig::nosq(100_000));
    assert!(
        partial.memory.shift_mask_uops > 800,
        "uops {}",
        partial.memory.shift_mask_uops
    );
    assert_eq!(
        partial.memory.shift_mask_uops,
        partial.memory.bypassed_loads
    );
}

/// §2: SSN wrap-around drains the pipeline and clears SSN-holding
/// structures without affecting committed state.
#[test]
fn ssn_wraparound_is_architecturally_invisible() {
    let prog = spill_loop(800);
    let mut wrap_cfg = SimConfig::nosq(100_000);
    wrap_cfg.machine.ssn_bits = 6; // wrap every 64 stores
    let wrapped = simulate(&prog, wrap_cfg);
    let normal = simulate(&prog, SimConfig::nosq(100_000));
    assert!(
        wrapped.verification.ssn_wrap_drains >= 10,
        "drains {}",
        wrapped.verification.ssn_wrap_drains
    );
    assert_eq!(wrapped.insts, normal.insts);
    assert_eq!(wrapped.memory.loads, normal.memory.loads);
    assert!(wrapped.cycles >= normal.cycles);
}
