//! Integration: the `nosq serve` daemon against the offline engine.
//!
//! Everything here runs the real [`Server`] in-process on an ephemeral
//! port — the same code path `nosq serve` executes — and talks to it
//! through the real [`ServeClient`]. The contracts under test:
//!
//! 1. **Byte-identity**: artifacts served over the wire are exactly the
//!    bytes a one-shot `nosq run` of the same spec produces.
//! 2. **Concurrency**: ≥ 8 simultaneous clients get identical bytes
//!    for identical campaigns, with no divergence.
//! 3. **Crash safety**: a daemon restarted on a journal with a torn
//!    tail (the kill -9 mid-append case) recovers every completed
//!    record, truncates the tear, and serves resubmissions from the
//!    journal without re-simulating.
//! 4. **Cache accounting**: hits, misses, and the `cached` response
//!    flag add up.

use std::net::SocketAddr;
use std::path::PathBuf;

use nosq_lab::json::Json;
use nosq_lab::{artifacts, run_campaign, Artifact, Campaign, RunOptions};
use nosq_serve::{ServeClient, ServeOptions, ServeStats, Server};

/// A small two-config campaign: enough to produce real matrix /
/// summary / speedup artifacts, small enough to run in milliseconds.
const SPEC: &str = "name = it-serve\nconfigs = nosq, baseline-storesets\n\
                    profiles = gzip\nmax_insts = 1500\nbaseline = baseline-storesets\n";

/// A spec that fingerprints differently from [`SPEC`] (other seed).
fn cold_spec(k: usize) -> String {
    format!(
        "name = it-serve-cold-{k}\nconfigs = nosq\nprofiles = gzip\n\
         max_insts = 1500\nseed = {}\n",
        4_000 + k as u64
    )
}

fn start(journal: Option<PathBuf>) -> (SocketAddr, std::thread::JoinHandle<ServeStats>) {
    let server = Server::bind(ServeOptions {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        journal,
        cache_capacity: 8,
        ..ServeOptions::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

fn connect(addr: SocketAddr) -> ServeClient {
    ServeClient::connect(&addr.to_string()).expect("connect")
}

fn local_artifacts(spec: &str) -> Vec<Artifact> {
    let campaign = Campaign::from_spec(spec).expect("spec parses");
    artifacts(&run_campaign(&campaign, &RunOptions::default()))
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nosq-it-serve-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn daemon_serves_cli_identical_bytes() {
    let (addr, handle) = start(None);
    let mut client = connect(addr);

    let outcome = client.run_spec(SPEC).expect("run spec");
    assert_eq!(outcome.name, "it-serve");
    assert!(!outcome.cached, "first submission must simulate");
    assert!(!outcome.artifacts.is_empty());
    assert_eq!(
        outcome.artifacts,
        local_artifacts(SPEC),
        "served artifacts must be byte-identical to `nosq run`"
    );

    // Unknown job ids are a polite protocol error, not a hang.
    let err = client.wait("0000000000000000").unwrap_err();
    assert!(err.to_string().contains("unknown job"), "{err}");
    let err = client.wait("not-a-fingerprint").unwrap_err();
    assert!(err.to_string().contains("malformed job id"), "{err}");

    client.shutdown().expect("shutdown");
    let stats = handle.join().expect("join server");
    assert_eq!(stats.jobs_run, 1);
    assert_eq!(stats.cache_misses, 1);
}

#[test]
fn eight_concurrent_clients_see_no_divergence() {
    let (addr, handle) = start(None);
    const CLIENTS: usize = 8;

    let reference = local_artifacts(SPEC);
    let outcomes: Vec<(Vec<Artifact>, Vec<Artifact>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|k| {
                let reference = &reference;
                scope.spawn(move || {
                    let mut client = connect(addr);
                    // Everyone hammers the shared hot campaign…
                    let hot = client.run_spec(SPEC).expect("hot spec");
                    assert_eq!(
                        &hot.artifacts, reference,
                        "client {k}: hot artifacts diverged"
                    );
                    // …and runs one private cold campaign of its own.
                    let cold = client.run_spec(&cold_spec(k)).expect("cold spec");
                    (hot.artifacts, cold.artifacts)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (k, (hot, cold)) in outcomes.iter().enumerate() {
        assert_eq!(hot, &reference);
        assert_eq!(
            cold,
            &local_artifacts(&cold_spec(k)),
            "client {k}: cold artifacts diverged from the local run"
        );
    }

    let mut client = connect(addr);
    let status = client.status().expect("status");
    let num = |n: &str| status.get(n).and_then(Json::as_u64).unwrap_or(u64::MAX);
    // The hot campaign simulates exactly once; every other hot
    // submission is a cache hit or an idempotent-duplicate reply.
    assert_eq!(num("jobs_run"), 1 + CLIENTS as u64);
    assert_eq!(num("completed"), 1 + CLIENTS as u64);
    assert_eq!(num("queued"), 0);
    assert_eq!(num("running"), 0);

    client.shutdown().expect("shutdown");
    let stats = handle.join().expect("join server");
    assert_eq!(stats.jobs_run, 1 + CLIENTS as u64);
    assert_eq!(stats.connections as usize, CLIENTS + 1);
}

#[test]
fn killed_daemon_resumes_from_a_torn_journal() {
    let dir = scratch("journal");
    let journal = dir.join("serve.journal");

    // Lifetime 1: complete one campaign, drain cleanly.
    let (addr, handle) = start(Some(journal.clone()));
    let mut client = connect(addr);
    let first = client.run_spec(SPEC).expect("first run");
    assert!(!first.cached);
    client.shutdown().expect("shutdown");
    handle.join().expect("join server");

    // Simulate kill -9 mid-append: a record header promising more
    // payload than was ever written. Recovery must drop exactly this
    // tail and keep the completed record before it.
    let clean_len = std::fs::metadata(&journal).unwrap().len();
    assert!(clean_len > 12, "journal must hold the completed record");
    let mut bytes = std::fs::read(&journal).unwrap();
    bytes.extend_from_slice(&200u32.to_le_bytes());
    bytes.extend_from_slice(&0u64.to_le_bytes());
    bytes.extend_from_slice(b"torn payload");
    std::fs::write(&journal, &bytes).unwrap();

    // Lifetime 2: recover, serve the resubmission without simulating.
    let (addr, handle) = start(Some(journal.clone()));
    let mut client = connect(addr);
    let status = client.status().expect("status");
    let num = |n: &str| status.get(n).and_then(Json::as_u64).unwrap_or(u64::MAX);
    // Two valid records survive: the job-boundary checkpoint appended
    // mid-campaign and the completion record that supersedes it.
    assert_eq!(num("journal_records"), 2);
    assert!(
        num("journal_truncated_bytes") > 0,
        "recovery must report the discarded tail"
    );
    assert_eq!(
        std::fs::metadata(&journal).unwrap().len(),
        clean_len,
        "the torn tail must be physically truncated"
    );

    let resumed = client.run_spec(SPEC).expect("resumed run");
    assert!(
        resumed.cached,
        "journal replay must serve without simulating"
    );
    assert_eq!(resumed.artifacts, first.artifacts);
    assert_eq!(resumed.artifacts, local_artifacts(SPEC));

    client.shutdown().expect("shutdown");
    let stats = handle.join().expect("join server");
    assert_eq!(stats.jobs_run, 0, "nothing may re-simulate after recovery");
    assert_eq!(stats.recovered, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn foreign_journal_files_are_refused() {
    let dir = scratch("foreign");
    let journal = dir.join("not-a-journal");
    std::fs::write(&journal, b"definitely not NOSQJRNL data").unwrap();
    let err = match Server::bind(ServeOptions {
        addr: "127.0.0.1:0".to_owned(),
        journal: Some(journal),
        ..ServeOptions::default()
    }) {
        Err(e) => e,
        Ok(_) => panic!("a foreign file must not be clobbered"),
    };
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_accounting_adds_up() {
    let (addr, handle) = start(None);
    let mut client = connect(addr);

    let miss = client.run_spec(SPEC).expect("first");
    let hit = client.run_spec(SPEC).expect("second");
    let cold = client.run_spec(&cold_spec(99)).expect("third");
    assert!(!miss.cached);
    assert!(hit.cached, "resubmission must be served from cache");
    assert!(!cold.cached);
    assert_eq!(hit.artifacts, miss.artifacts);

    let status = client.status().expect("status");
    let num = |n: &str| status.get(n).and_then(Json::as_u64).unwrap_or(u64::MAX);
    assert_eq!(num("cache_hits"), 1);
    assert_eq!(num("cache_misses"), 2);
    assert_eq!(num("jobs_run"), 2);

    client.shutdown().expect("shutdown");
    let stats = handle.join().expect("join server");
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 2);
}

/// Runs [`SPEC`] through the durable runner and captures the first
/// mid-job checkpoint event as the journal record a crashed process
/// would have fsynced — the raw material for the resume tests.
fn mid_job_entry(campaign: &Campaign) -> nosq_serve::CheckpointEntry {
    use nosq_check::sync::StdSync;
    use nosq_lab::{run_campaign_durable, synthesize_programs, ProgressCounters, WorkerContext};

    let fingerprint = nosq_serve::campaign_fingerprint(campaign);
    let programs = synthesize_programs(campaign, 1);
    let mut captured: Option<nosq_serve::CheckpointEntry> = None;
    let mut ctx = WorkerContext::new();
    let progress: ProgressCounters<StdSync> = ProgressCounters::new();
    let mut sink = |ev: nosq_lab::CkptEvent<'_>| {
        if captured.is_none() && ev.state.is_some() {
            captured = Some(nosq_serve::CheckpointEntry {
                fingerprint,
                name: campaign.name.clone(),
                spec: SPEC.to_owned(),
                job_index: ev.job_index as u64,
                completed: ev.completed.to_vec(),
                state: ev.state.map(nosq_core::SimCheckpoint::to_bytes),
            });
        }
    };
    let full = run_campaign_durable(
        campaign, &programs, &mut ctx, &progress, 400, None, &mut sink,
    );
    assert_eq!(
        artifacts(&full),
        local_artifacts(SPEC),
        "the durable runner must match run_campaign bit-for-bit"
    );
    captured.expect("a 1500-inst job checkpoints at cadence 400")
}

/// The tentpole's core claim at the library level: finishing a
/// campaign from a mid-job checkpoint record produces artifacts
/// byte-identical to the uninterrupted run — re-simulating only the
/// interrupted job's tail, never serving partially-applied state.
#[test]
fn checkpoint_resume_is_bit_identical_to_uninterrupted() {
    use nosq_check::sync::StdSync;
    use nosq_lab::{run_campaign_durable, synthesize_programs, ProgressCounters, WorkerContext};

    let campaign = Campaign::from_spec(SPEC).unwrap();
    let entry = mid_job_entry(&campaign);

    // Resume from the captured record alone, exactly as recovery does.
    let resume = nosq_serve::resume_state(&campaign, &entry).expect("checkpoint decodes");
    assert!(resume.checkpoint.is_some(), "mid-job state must restore");
    let programs = synthesize_programs(&campaign, 1);
    let mut ctx = WorkerContext::new();
    let progress: ProgressCounters<StdSync> = ProgressCounters::new();
    let resumed = run_campaign_durable(
        &campaign,
        &programs,
        &mut ctx,
        &progress,
        0,
        Some(resume),
        &mut |_| {},
    );
    assert_eq!(
        artifacts(&resumed),
        local_artifacts(SPEC),
        "resumed artifacts must be byte-identical to the uninterrupted run"
    );
}

/// A daemon started on a journal holding only a mid-job checkpoint
/// (the kill -9 mid-campaign case) re-enqueues the half-finished job,
/// finishes it from the checkpoint, and serves the same bytes a fresh
/// simulation would — then the completion record supersedes the
/// checkpoint for the next lifetime.
#[test]
fn daemon_resumes_half_finished_jobs_from_the_journal() {
    let dir = scratch("partial");
    let journal_path = dir.join("serve.journal");
    let campaign = Campaign::from_spec(SPEC).unwrap();
    let entry = mid_job_entry(&campaign);
    {
        let (mut journal, recovered) = nosq_serve::Journal::open(&journal_path).unwrap();
        assert!(recovered.completed.is_empty());
        journal.append_checkpoint(&entry).unwrap();
    }

    let (addr, handle) = start(Some(journal_path.clone()));
    let mut client = connect(addr);
    let job = nosq_serve::fingerprint_hex(entry.fingerprint);
    let outcome = client.wait(&job).expect("half-finished job completes");
    assert_eq!(outcome.artifacts, local_artifacts(SPEC));
    client.shutdown().expect("shutdown");
    let stats = handle.join().expect("join server");
    assert_eq!(stats.resumed, 1, "the checkpoint must re-enqueue its job");
    assert_eq!(stats.jobs_run, 1);

    let (_, recovered) = nosq_serve::Journal::open(&journal_path).unwrap();
    assert_eq!(recovered.completed.len(), 1);
    assert!(
        recovered.partial.is_empty(),
        "the completion record must supersede the checkpoint"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `wait` on ids the daemon cannot serve answers with *structured*
/// errors — `unknown_job` for never-submitted ids, `evicted` for
/// completed jobs whose artifacts fell out of the LRU — and
/// resubmitting an evicted spec recomputes it (the documented
/// recovery path). No wait may hang.
#[test]
fn wait_errors_are_structured_not_hangs() {
    use std::io::{BufRead, BufReader, Write};

    let server = Server::bind(ServeOptions {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        cache_capacity: 1,
        ..ServeOptions::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("server run"));

    let mut client = connect(addr);
    let reply = client.submit(SPEC).expect("submit");
    let job = reply.job.clone();
    client.wait(&job).expect("first wait");
    // Capacity 1: the cold campaign's completion evicts the hot one.
    client.run_spec(&cold_spec(7)).expect("cold spec");

    let raw = std::net::TcpStream::connect(addr).expect("raw connect");
    let mut reader = BufReader::new(raw.try_clone().expect("clone"));
    let mut writer = raw;
    let mut ask = |line: String| -> Json {
        writeln!(writer, "{line}").unwrap();
        writer.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        nosq_lab::json::parse(reply.trim_end()).expect("structured reply")
    };

    let doc = ask(format!("{{\"cmd\":\"wait\",\"job\":\"{job}\"}}"));
    assert_eq!(doc.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(doc.get("evicted"), Some(&Json::Bool(true)), "{doc:?}");

    let doc = ask("{\"cmd\":\"wait\",\"job\":\"00000000deadbeef\"}".to_owned());
    assert_eq!(doc.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(doc.get("unknown_job"), Some(&Json::Bool(true)), "{doc:?}");

    // Resubmitting the evicted spec recomputes; bytes stay identical.
    let again = client.run_spec(SPEC).expect("resubmit evicted spec");
    assert!(!again.cached, "evicted results must recompute, not hang");
    assert_eq!(again.artifacts, local_artifacts(SPEC));

    client.shutdown().expect("shutdown");
    handle.join().expect("join server");
}

/// The slow-loris defense: a connection that starts a request line and
/// stalls is told so and dropped within the configured window, leaving
/// the daemon fully responsive — it cannot pin a handler thread.
#[test]
fn half_written_requests_time_out_and_free_the_worker() {
    use std::io::{BufRead, BufReader, Write};

    let server = Server::bind(ServeOptions {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        request_timeout_ms: 400,
        ..ServeOptions::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("server run"));

    let mut raw = std::net::TcpStream::connect(addr).expect("raw connect");
    raw.write_all(b"{\"cmd\":\"stat").expect("half a request");
    raw.flush().unwrap();
    let mut reader = BufReader::new(raw.try_clone().expect("clone"));
    let mut line = String::new();
    let n = reader.read_line(&mut line).expect("server reply");
    assert!(n > 0, "the stalled connection must be told, not just cut");
    assert!(line.contains("timed out"), "{line}");
    line.clear();
    assert_eq!(
        reader.read_line(&mut line).expect("read EOF"),
        0,
        "the connection must be closed after the timeout"
    );

    // The daemon is still fully alive for well-behaved clients.
    let mut client = connect(addr);
    client.ping().expect("ping after loris");
    let outcome = client.run_spec(SPEC).expect("run after loris");
    assert_eq!(outcome.artifacts, local_artifacts(SPEC));
    client.shutdown().expect("shutdown");
    handle.join().expect("join server");
}

/// Keep the test specs honest: both forms must parse, and the cold
/// specs must fingerprint apart from the shared hot one.
#[test]
fn test_specs_parse_and_fingerprint_apart() {
    use nosq_serve::campaign_fingerprint;
    let hot = Campaign::from_spec(SPEC).unwrap();
    assert_eq!(hot.jobs(), 2);
    for k in 0..8 {
        let cold = Campaign::from_spec(&cold_spec(k)).unwrap();
        assert_ne!(campaign_fingerprint(&cold), campaign_fingerprint(&hot));
    }
}
