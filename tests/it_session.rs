//! Session API integration: observer hooks agree with the report's
//! counters, live statistics behave mid-flight, and the serialized
//! artifacts carry every counter.

use nosq_core::observer::{
    BypassEvent, CommitEvent, CycleEvent, IntervalIpc, ReexecEvent, SimObserver, SquashCause,
    SquashEvent,
};
use nosq_core::{simulate, SimConfig, SimReport, Simulator, StopCondition};
use nosq_isa::InstClass;
use nosq_trace::{synthesize, Profile};

/// Counts every event category, deriving the same totals the pipeline
/// accumulates internally.
#[derive(Default)]
struct EventCounts {
    cycles: u64,
    commits: u64,
    committed_loads: u64,
    committed_stores: u64,
    bypasses: u64,
    partial_bypasses: u64,
    squashes: u64,
    squash_causes: Vec<SquashCause>,
    reexecs: u64,
    reexec_mismatches: u64,
}

impl SimObserver for EventCounts {
    fn on_cycle(&mut self, _ev: &CycleEvent) {
        self.cycles += 1;
    }
    fn on_commit(&mut self, ev: &CommitEvent) {
        self.commits += 1;
        match ev.class {
            InstClass::Load => self.committed_loads += 1,
            InstClass::Store => self.committed_stores += 1,
            _ => {}
        }
    }
    fn on_bypass(&mut self, ev: &BypassEvent) {
        self.bypasses += 1;
        if ev.partial {
            self.partial_bypasses += 1;
        }
    }
    fn on_squash(&mut self, ev: &SquashEvent) {
        self.squashes += 1;
        self.squash_causes.push(ev.cause);
    }
    fn on_reexec(&mut self, ev: &ReexecEvent) {
        self.reexecs += 1;
        if ev.mismatch {
            self.reexec_mismatches += 1;
        }
    }
}

fn run_observed(cfg: SimConfig) -> (EventCounts, SimReport) {
    let profile = Profile::by_name("g721.e").expect("profile exists");
    let program = synthesize(profile, nosq_bench::SEED);
    let mut counts = EventCounts::default();
    let mut sim = Simulator::new(&program, cfg);
    sim.attach_observer(Box::new(&mut counts));
    sim.run_until(StopCondition::Done);
    let report = sim.finish();
    (counts, report)
}

/// Hook-derived totals must match the report's counters exactly: the
/// observer stream is the same information, just time-resolved.
#[test]
fn observer_totals_match_report_counters_nosq() {
    let (counts, report) = run_observed(SimConfig::nosq(30_000));
    assert_eq!(counts.cycles, report.cycles);
    assert_eq!(counts.commits, report.insts);
    assert_eq!(counts.committed_loads, report.memory.loads);
    assert_eq!(counts.committed_stores, report.memory.stores);
    assert_eq!(counts.bypasses, report.memory.bypassed_loads);
    assert_eq!(counts.partial_bypasses, report.memory.shift_mask_uops);
    assert_eq!(counts.reexecs, report.verification.backend_dcache_reads);
    assert_eq!(
        counts.squashes,
        report.verification.bypass_mispredicts + report.verification.ordering_squashes
    );
    assert!(
        counts
            .squash_causes
            .iter()
            .all(|c| *c == SquashCause::BypassMispredict),
        "NoSQ squashes must be bypass mis-predictions"
    );
    // The workload actually exercised the hooks.
    assert!(counts.bypasses > 0 && counts.reexecs > 0);
}

#[test]
fn observer_totals_match_report_counters_baseline() {
    let (counts, report) = run_observed(SimConfig::baseline_storesets(30_000));
    assert_eq!(counts.commits, report.insts);
    assert_eq!(counts.bypasses, 0, "baseline never bypasses");
    assert_eq!(
        counts.squashes,
        report.verification.bypass_mispredicts + report.verification.ordering_squashes
    );
    assert!(
        counts
            .squash_causes
            .iter()
            .all(|c| *c == SquashCause::OrderingViolation),
        "baseline squashes are ordering violations"
    );
}

/// Attaching observers must not perturb timing: the observed run's
/// report equals the unobserved run's, bit for bit.
#[test]
fn observers_are_timing_invisible() {
    let profile = Profile::by_name("gzip").expect("profile exists");
    let program = synthesize(profile, nosq_bench::SEED);
    let plain = simulate(&program, SimConfig::nosq(20_000));
    let mut counts = EventCounts::default();
    let mut sim = Simulator::new(&program, SimConfig::nosq(20_000));
    sim.attach_observer(Box::new(&mut counts));
    let observed = sim.run();
    assert_eq!(plain, observed);
}

/// Live stats mid-flight: `run_until(Insts(n))` stops with at least
/// `n` commits, strictly before completion on a longer program, and a
/// partial `finish()` reports the executed prefix.
#[test]
fn partial_sessions_report_the_prefix() {
    let profile = Profile::by_name("gzip").expect("profile exists");
    let program = synthesize(profile, nosq_bench::SEED);
    let mut sim = Simulator::new(&program, SimConfig::nosq(20_000));
    let done = sim.run_until(StopCondition::Insts(4_000));
    assert!(!done && !sim.is_done(), "stopped long before the budget");
    let live = *sim.stats();
    assert!(live.insts >= 4_000);
    assert!(live.cycles > 0 && live.ipc() > 0.0);
    let prefix = sim.finish();
    assert_eq!(prefix, live, "finish must freeze the live stats");
    assert!(prefix.insts < 20_000);
}

/// The built-in interval-IPC observer integrates the same instruction
/// stream the report summarizes.
#[test]
fn interval_ipc_integrates_to_total_commits() {
    let profile = Profile::by_name("gsm.e").expect("profile exists");
    let program = synthesize(profile, nosq_bench::SEED);
    let interval = 256;
    let mut ipc = IntervalIpc::new(interval);
    let mut sim = Simulator::new(&program, SimConfig::nosq(15_000));
    sim.attach_observer(Box::new(&mut ipc));
    sim.run_until(StopCondition::Done);
    let report = sim.finish();
    // One sample per full interval after the anchoring first cycle.
    assert_eq!(ipc.samples().len() as u64, (report.cycles - 1) / interval);
    let integrated: f64 = ipc.samples().iter().sum::<f64>() * interval as f64;
    // Full intervals only; the tail (< one interval) is unsampled.
    assert!(
        integrated <= report.insts as f64
            && integrated >= report.insts.saturating_sub(interval * 8) as f64,
        "integrated {integrated} vs committed {}",
        report.insts
    );
}

/// The serialized artifacts carry every counter of the report they
/// came from.
#[test]
fn serialization_covers_all_counters() {
    let profile = Profile::by_name("gzip").expect("profile exists");
    let program = synthesize(profile, nosq_bench::SEED);
    let report = simulate(&program, SimConfig::nosq(10_000));
    let json = report.to_json();
    for (group, name, value) in report.counters() {
        assert!(
            json.contains(&format!("\"{name}\":{value}")),
            "{group}.{name} missing from JSON"
        );
    }
    let header = SimReport::csv_header();
    let row = report.to_csv_row();
    assert_eq!(header.split(',').count(), row.split(',').count());
    let cycles_col = header
        .split(',')
        .position(|c| c == "cycles")
        .expect("cycles column");
    assert_eq!(
        row.split(',').nth(cycles_col).unwrap(),
        report.cycles.to_string()
    );
}
