//! Chunked-session equivalence property: splitting a simulation into
//! *arbitrary* `run_until(Cycles(..))` chunk sequences yields a
//! [`SimReport`] identical to the one-shot run — the invariant the
//! `nosq-lab` executor's chunked job loop (and any future
//! checkpoint/resume machinery) rests on.
//!
//! `it_determinism.rs` pins one fixed interleaving; this suite lets the
//! (vendored, deterministic) proptest stand-in pick the chunk sizes.

use proptest::prelude::*;

use nosq_core::{simulate, SimConfig, SimReport, Simulator, StopCondition};
use nosq_isa::Program;
use nosq_trace::{synthesize, Profile};

const BUDGET: u64 = 6_000;

fn program() -> Program {
    let profile = Profile::by_name("g721.e").expect("profile exists");
    synthesize(profile, nosq_bench::SEED)
}

fn config(idx: usize) -> SimConfig {
    match idx {
        0 => SimConfig::nosq(BUDGET),
        1 => SimConfig::nosq_no_delay(BUDGET),
        2 => SimConfig::baseline_storesets(BUDGET),
        _ => SimConfig::perfect_smb(BUDGET),
    }
}

/// Runs the session by cycling through `chunks` as successive
/// `run_until(Cycles(now + chunk))` targets until completion.
fn run_chunked(program: &Program, cfg: SimConfig, chunks: &[u64]) -> SimReport {
    let mut sim = Simulator::new(program, cfg);
    let mut i = 0;
    while !sim.is_done() {
        let target = sim.stats().cycles + chunks[i % chunks.len()];
        sim.run_until(StopCondition::Cycles(target));
        i += 1;
    }
    sim.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any chunk sequence, any configuration: bit-identical reports.
    #[test]
    fn arbitrary_chunking_matches_one_shot(
        chunks in prop::collection::vec(1u64..4_000, 1..10),
        cfg_idx in 0usize..4,
    ) {
        let program = program();
        let cfg = config(cfg_idx);
        let one_shot = simulate(&program, cfg.clone());
        let chunked = run_chunked(&program, cfg, &chunks);
        prop_assert_eq!(one_shot, chunked, "chunks {:?} diverged", chunks);
    }
}

/// Degenerate chunking — every chunk one cycle — is just `step()` in
/// disguise and must agree too (cheap fixed case kept outside the
/// property loop).
#[test]
fn single_cycle_chunking_matches_one_shot() {
    let program = program();
    let cfg = SimConfig::nosq(2_000);
    let one_shot = simulate(&program, cfg.clone());
    assert_eq!(one_shot, run_chunked(&program, cfg, &[1]));
}
