//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses. The build container has no crates.io access, so this provides
//! the same API shape — `proptest!`, `prop_oneof!`, `prop_assert*!`,
//! `prop_assume!`, `Strategy`/`Just`/`any`, `prop::collection::vec`,
//! `ProptestConfig::with_cases` — backed by a fixed-seed deterministic
//! generator. Unlike real proptest there is no shrinking: a failing case
//! panics with the formatted assertion message and the case inputs'
//! `Debug` output is up to the caller. Determinism means a failure
//! reproduces exactly on re-run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use core::ops::Range;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Generates values of an output type from random bits.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    impl<T, S: Strategy<Value = T> + ?Sized> Strategy for Box<S> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Creates a union over `options`; each draw picks one uniformly.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// Full-range strategy for a primitive type (`any::<T>()`).
    pub struct Any<T>(core::marker::PhantomData<T>);

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut SmallRng) -> $t {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut SmallRng) -> bool {
            rng.gen::<bool>()
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use core::ops::Range;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vector of values from `element`, length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test-case bookkeeping used by the `proptest!` macro expansion.

    /// Run configuration (`with_cases` is the only knob used here).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Runs `cases` successful cases per test.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not succeed.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; draw a fresh case.
        Reject,
        /// An assertion failed; the whole test fails.
        Fail(String),
    }
}

/// Namespaced strategy modules, mirroring `proptest::prop`.
pub mod prop {
    pub use crate::collection;
}

#[doc(hidden)]
pub use rand as __rand;

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strategy)
                as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

/// Rejects the current case (draws a replacement) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Fails the test (with a formatted message) unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the test unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        $crate::prop_assert_eq!($left, $right, "assertion failed")
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{}: {:?} != {:?}", format!($($fmt)+), left, right),
            ));
        }
    }};
}

/// Declares property tests: each body runs over many generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                // Fixed seed: deterministic across runs, varied across tests.
                let mut seed = 0x6e6f_7371u64; // "nosq"
                for b in stringify!($name).bytes() {
                    seed = seed.wrapping_mul(131).wrapping_add(b as u64);
                }
                let mut rng = <$crate::__rand::rngs::SmallRng
                    as $crate::__rand::SeedableRng>::seed_from_u64(seed);
                let mut successes = 0u32;
                let mut attempts = 0u32;
                let max_attempts = config.cases.saturating_mul(20).max(20);
                while successes < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest {}: too many rejected cases ({} attempts, {} successes)",
                        stringify!($name), attempts, successes,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome = (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => successes += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => panic!("proptest {} failed: {}", stringify!($name), msg),
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps_compose(
            v in prop::collection::vec((0u8..8, 1u64..9), 1..20),
            x in prop_oneof![Just(1i64), (0i32..5).prop_map(|i| i as i64 + 10)],
            b in any::<bool>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (slot, width) in &v {
                prop_assert!(*slot < 8 && (1..9).contains(width));
            }
            prop_assert!(x == 1i64 || (10i64..15).contains(&x));
            // Rejects ~half the draws: exercises the Reject/retry path.
            prop_assume!(b);
            prop_assert_eq!(x, x, "identity");
        }
    }
}
