//! Offline stand-in for the subset of the `criterion` benchmark harness
//! this workspace uses. The build container has no crates.io access, so
//! this provides the same structure — `criterion_group!`/`criterion_main!`,
//! `Criterion::{bench_function, benchmark_group}`, `Bencher::{iter,
//! iter_batched}` — with a simple wall-clock median-of-samples measurement
//! instead of criterion's full statistical machinery. Output is one
//! `name … time/iter` line per benchmark, enough to compare hot paths
//! across commits by eye.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How `Bencher::iter_batched` amortizes setup cost. Only the variants the
/// workspace uses carry meaning; all behave identically here (setup is
/// excluded from timing either way).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Times a single benchmark routine.
pub struct Bencher {
    /// Nanoseconds per iteration measured by the last `iter*` call.
    ns_per_iter: f64,
}

/// Samples per benchmark (median is reported).
const SAMPLES: usize = 7;

impl Bencher {
    fn new() -> Bencher {
        Bencher { ns_per_iter: 0.0 }
    }

    /// Picks an iteration count so one sample takes roughly `target`.
    fn calibrate(mut once: impl FnMut() -> Duration, target: Duration) -> u64 {
        let mut iters = 1u64;
        loop {
            let t = once();
            if t * (iters as u32).max(1) >= target || iters >= 1 << 20 {
                return iters.max(1);
            }
            iters = iters.saturating_mul(2);
        }
    }

    fn record(&mut self, mut sample: impl FnMut(u64) -> Duration) {
        let iters = Bencher::calibrate(|| sample(1), Duration::from_millis(2));
        let mut samples = [0.0f64; SAMPLES];
        for s in &mut samples {
            let t = sample(iters);
            *s = t.as_secs_f64() * 1e9 / iters as f64;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[SAMPLES / 2];
    }

    /// Times `routine`, called back-to-back.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        self.record(|iters| {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            start.elapsed()
        });
    }

    /// Times `routine` over inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        // Bounds live inputs: a sub-microsecond routine calibrates to ~1M
        // iterations, and holding 1M setup outputs at once could be GBs.
        const CHUNK: u64 = 1024;
        self.record(|iters| {
            let mut elapsed = Duration::ZERO;
            let mut remaining = iters;
            while remaining > 0 {
                let n = remaining.min(CHUNK);
                let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
                let start = Instant::now();
                for input in inputs {
                    std::hint::black_box(routine(input));
                }
                elapsed += start.elapsed();
                remaining -= n;
            }
            elapsed
        });
    }
}

fn report(name: &str, ns: f64) {
    let (value, unit) = if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    };
    println!("{name:<50} {value:>10.3} {unit}/iter");
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs and reports one benchmark.
    pub fn bench_function(
        &mut self,
        name: &str,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        let mut b = Bencher::new();
        f(&mut b);
        report(name, b.ns_per_iter);
        self
    }

    /// Opens a named group; benchmarks report as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_owned(),
        }
    }

    /// Prints the closing summary line (no-op placeholder).
    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling here is fixed-size.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs and reports one benchmark within the group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(&format!("{}/{}", self.name, name), b.ns_per_iter);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("smoke/iter", |b| b.iter(|| 2u64 + 2));
        let mut g = c.benchmark_group("smoke");
        g.sample_size(10);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
