//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build container has no access to crates.io, and every consumer in
//! this workspace seeds its generator explicitly (`SeedableRng::seed_from_u64`)
//! for reproducible workload synthesis, so a small deterministic PRNG is a
//! faithful substitute. The implementation is xoshiro256++ (public domain,
//! Blackman & Vigna) seeded through SplitMix64 — the same construction the
//! real `rand::rngs::SmallRng` documents on 64-bit targets.
//!
//! Only the API surface the workspace calls is provided: `Rng::{gen,
//! gen_bool, gen_range}`, `SeedableRng::seed_from_u64`, `rngs::SmallRng`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be built from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from `seed`. Equal seeds yield equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws uniformly from `[0, n)` by rejection sampling (no modulo bias).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) + 1;
                if span > u64::MAX as i128 {
                    return (lo as i128 + rng.next_u64() as i128) as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws one value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        // 53-bit fixed-point comparison, like rand's Bernoulli.
        let scale = (1u64 << 53) as f64;
        let threshold = (p * scale) as u64;
        (self.next_u64() >> 11) < threshold
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic small-state generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // SplitMix64 expansion, as specified by Vigna for seeding xoshiro.
            let mut x = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *slot = z ^ (z >> 31);
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for i in 0..1000usize {
            let v = rng.gen_range(0..=i);
            assert!(v <= i);
            if i > 0 {
                let w = rng.gen_range(0..i);
                assert!(w < i);
            }
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_600..=3_400).contains(&hits), "hits = {hits}");
    }
}
